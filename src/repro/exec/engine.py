"""Parallel scheme/bench execution engine over the artifact cache.

The paper's evaluation is an embarrassingly parallel sweep — benchmarks
x schemes x intercluster latencies (Table 1, Figs 7-10).  The engine
fans those cells out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``--jobs N``, default ``os.cpu_count()``), runs each cell under the
resilience layer's retry/fallback ladder so one failing cell degrades
without killing the sweep, and merges the per-cell
:class:`~repro.resilience.report.RunReport`\\ s into one sweep-level
:class:`SweepResult` with wall-clock speedup and cache-hit columns.

Workers never share in-memory state: every worker rehydrates prepared
programs and outcomes from the content-addressed on-disk
:class:`~repro.exec.cache.ArtifactCache`, so a warm rerun of the whole
sweep skips the interpreter, the points-to solver, and the partitioners
entirely.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .artifacts import (
    outcome_from_payload,
    outcome_key_material,
    outcome_to_payload,
    prepared_from_payload,
    prepared_key_material,
    prepared_to_payload,
)
from .cache import ArtifactCache
from .runconfig import SCHEMA_VERSION, RunConfig

#: Default scheme set of a sweep (Table 1 order, unified first so the
#: relative-performance column always has its baseline).
SWEEP_SCHEMES = ("unified", "gdp", "profilemax", "naive")

#: Placeholder used when deterministic serialisation scrubs a field whose
#: value depends on execution order or wall clocks (cache locality, jobs).
_SCRUBBED = "-"


# ---------------------------------------------------------------------------
# In-process cache-aware building blocks (shared by workers, the bench
# harness, and Pipeline.run_all)
# ---------------------------------------------------------------------------


def load_or_prepare(
    source: str,
    name: str,
    config: RunConfig,
    cache: Optional[ArtifactCache] = None,
) -> Tuple[Any, Optional[str], str]:
    """(prepared, ir_hash, cache status) for one benchmark program.

    On a hit the prepared program is rehydrated from its artifact (no
    interpretation, no points-to solve); on a miss it is built and the
    artifact stored.  With caching off the hash is skipped too.
    """
    from ..pipeline.prepared import PreparedProgram

    cache = cache or ArtifactCache(config.cache_dir, config.cache)
    if not config.cache_enabled:
        prepared = PreparedProgram.from_source(source, name, config=config)
        return prepared, None, "off"
    material = prepared_key_material(
        source, name, config.pointsto_tier, profile=config.profile
    )
    payload = cache.load("prepared", material)
    if payload is not None:
        return prepared_from_payload(payload), payload["ir_hash"], "hit"
    prepared = PreparedProgram.from_source(source, name, config=config)
    payload = prepared_to_payload(prepared)
    cache.store("prepared", material, payload)
    return prepared, payload["ir_hash"], "miss"


def run_prepared_scheme(
    prepared,
    machine,
    config: RunConfig,
    scheme: str,
    cache: Optional[ArtifactCache] = None,
    ir_hash: Optional[str] = None,
    validate: Optional[bool] = None,
):
    """One scheme over an in-memory prepared program, cache-aware.

    Returns ``(SchemeOutcome, cache_status)``.  Used by
    :meth:`Pipeline.run_all` and the bench harness; the parallel workers
    use the resilient variant in :func:`run_cell`.
    """
    from ..pipeline.schemes import run_scheme

    validate = config.validate if validate is None else validate
    cacheable = config.cacheable_results
    cache = cache or ArtifactCache(config.cache_dir, config.cache)
    material = None
    if cacheable:
        if ir_hash is None:
            ir_hash = prepared.fingerprint()
        material = outcome_key_material(
            ir_hash, machine, config.pointsto_tier, scheme, config.seed
        )
        payload = cache.load("outcome", material)
        if payload is not None:
            return outcome_from_payload(payload, machine), "hit"
    outcome = run_scheme(
        prepared, machine, scheme,
        validate=validate, seed_offset=config.seed,
    )
    if cacheable and material is not None:
        cache.store("outcome", material, outcome_to_payload(outcome))
        return outcome, "miss"
    return outcome, "skip"


def lookup_cached_outcome(
    source: str,
    name: str,
    config: RunConfig,
    cache: Optional[ArtifactCache] = None,
) -> Optional[Dict[str, Any]]:
    """Job-keyed cache probe: the outcome payload for one (source,
    config) cell if *both* its artifacts are already on disk, else None.

    This is the admission-control fast path the job server uses to tag a
    submission as warm before it ever reaches a worker — nothing is
    computed, nothing is stored.  Callers that must not skew a shared
    instance's hit/miss telemetry should pass their own (e.g. readonly)
    handle.
    """
    if not (config.cache_enabled and config.cacheable_results):
        return None
    cache = cache or ArtifactCache(config.cache_dir, "readonly")
    prep_payload = cache.load(
        "prepared",
        prepared_key_material(
            source, name, config.pointsto_tier, profile=config.profile
        ),
    )
    if prep_payload is None:
        return None
    return cache.load(
        "outcome",
        outcome_key_material(
            prep_payload["ir_hash"], config.build_machine(),
            config.pointsto_tier, config.scheme, config.seed,
        ),
    )


# ---------------------------------------------------------------------------
# The pool worker
# ---------------------------------------------------------------------------


def _bench_source(name: str, source: Optional[str]) -> Tuple[str, str]:
    if source is not None:
        return name, source
    from ..bench import get as get_benchmark

    bench = get_benchmark(name)
    return bench.name, bench.source


def run_cell(
    payload: Dict[str, Any], cache: Optional[ArtifactCache] = None
) -> Dict[str, Any]:
    """Execute one sweep cell; never raises (a failed cell reports itself).

    The payload is plain JSON (picklable across the pool): the cell's
    RunConfig dict plus ``bench`` and optionally ``source`` for programs
    not in the registry.  In-process callers (the job server's threaded
    workers) may pass a shared ``cache`` handle so hit/miss telemetry
    accumulates in one place; pool workers leave it None and build their
    own.
    """
    from ..resilience import LadderExhausted, ResilientPipeline
    from ..resilience.report import RunReport

    config = RunConfig.from_dict(payload["config"])
    cache = cache or ArtifactCache(config.cache_dir, config.cache)
    started = time.perf_counter()
    cell: Dict[str, Any] = {
        "bench": payload["bench"],
        "scheme": config.scheme,
        "latency": config.latency,
        "pointsto_tier": config.pointsto_tier,
        "seed": config.seed,
        "machine": config.machine,
    }
    report = RunReport()
    cache_events = {"prepared": "off", "outcome": "off"}
    try:
        name, source = _bench_source(payload["bench"], payload.get("source"))
        machine = config.build_machine()
        cacheable = config.cacheable_results

        # Fast path: the outcome artifact alone answers the cell.  The
        # ir_hash needed for its key lives in the prepared artifact, so a
        # fully warm cell never even compiles.
        prepared = None
        ir_hash = None
        if config.cache_enabled:
            material = prepared_key_material(
                source, name, config.pointsto_tier, profile=config.profile
            )
            prep_payload = cache.load("prepared", material)
            if prep_payload is not None:
                ir_hash = prep_payload["ir_hash"]
                cache_events["prepared"] = "hit"
                report.record_cache("prepared", "hit")
        if cacheable and ir_hash is not None:
            out_material = outcome_key_material(
                ir_hash, machine, config.pointsto_tier, config.scheme,
                config.seed,
            )
            out_payload = cache.load("outcome", out_material)
            if out_payload is not None:
                cache_events["outcome"] = "hit"
                report.record_cache("outcome", "hit")
                report.record_run(config.scheme, [config.scheme])
                ran_as = out_payload.get("ran_as", out_payload["scheme"])
                report.record_final(config.scheme, ran_as, "ok")
                roofline = out_payload.get("roofline")
                if roofline is not None:
                    report.record_roofline(ran_as, roofline)
                cell.update(
                    status=(
                        "degraded"
                        if ran_as != config.scheme else "ok"
                    ),
                    ran_as=ran_as,
                    cycles=out_payload["eval"]["cycles"],
                    dynamic_moves=out_payload["eval"]["dynamic_moves"],
                    roofline_ratio=(roofline or {}).get("ratio"),
                    error=None,
                )
                return _finish_cell(cell, cache_events, report, started)

        # Slow path: materialise the prepared program (rehydrated on a
        # prepared hit, computed and stored on a miss) and run the scheme
        # under the resilience ladder.
        if config.cache_enabled and cache_events["prepared"] == "hit":
            prepared = prepared_from_payload(prep_payload)
        else:
            prepared, ir_hash, status = load_or_prepare(
                source, name, config, cache
            )
            cache_events["prepared"] = status
            if status != "off":
                report.record_cache("prepared", status)

        pipe = ResilientPipeline.from_config(config, machine=machine)
        try:
            result = pipe.run(prepared, config.scheme, report=report)
        except LadderExhausted as exc:
            cell.update(
                status="failed", ran_as=None, cycles=None,
                dynamic_moves=None, roofline_ratio=None, error=str(exc),
            )
            return _finish_cell(cell, cache_events, report, started)

        if cacheable and ir_hash is not None:
            out_material = outcome_key_material(
                ir_hash, machine, config.pointsto_tier, config.scheme,
                config.seed,
            )
            out_payload = outcome_to_payload(result.outcome)
            out_payload["ran_as"] = result.scheme
            cache.store("outcome", out_material, out_payload)
            cache_events["outcome"] = "miss"
            report.record_cache("outcome", "miss")
        elif not cacheable and config.cache_enabled:
            cache_events["outcome"] = "skip"

        roofline = getattr(result, "roofline", None)
        if roofline is not None:
            report.record_roofline(result.scheme, roofline)
        cell.update(
            status="degraded" if result.fell_back else "ok",
            ran_as=result.scheme,
            cycles=result.cycles,
            dynamic_moves=result.dynamic_moves,
            roofline_ratio=(roofline or {}).get("ratio"),
            error=None,
        )
        return _finish_cell(cell, cache_events, report, started)
    except Exception as exc:  # noqa: BLE001 - a cell must never kill the sweep
        cell.update(
            status="failed", ran_as=None, cycles=None, dynamic_moves=None,
            roofline_ratio=None, error=f"{type(exc).__name__}: {exc}",
        )
        return _finish_cell(cell, cache_events, report, started)


def _finish_cell(cell, cache_events, report, started) -> Dict[str, Any]:
    cell["cache"] = dict(cache_events)
    cell["seconds"] = time.perf_counter() - started
    cell["report"] = report.to_dict()
    cell["report_deterministic"] = report.to_dict(deterministic=True)
    return cell


# ---------------------------------------------------------------------------
# Sweep-level result
# ---------------------------------------------------------------------------


def _cell_sort_key(cell: Dict[str, Any]) -> Tuple:
    return (
        cell["bench"], cell["scheme"], cell["latency"],
        cell["pointsto_tier"], cell["seed"],
    )


class SweepResult:
    """Merged result of one sweep: ordered cells + aggregate telemetry.

    ``to_dict(deterministic=True)`` strips everything execution-order or
    wall-clock dependent (seconds, jobs, cache locality), leaving only
    the seed-determined results — the form the ``--jobs 1`` vs
    ``--jobs 4`` byte-identity tests pin.
    """

    def __init__(
        self,
        cells: List[Dict[str, Any]],
        wall_seconds: float,
        jobs: int,
        config: RunConfig,
    ):
        self.cells = sorted(cells, key=_cell_sort_key)
        self.wall_seconds = wall_seconds
        self.jobs = jobs
        self.config = config

    # -- aggregates ------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "degraded": 0, "failed": 0}
        for cell in self.cells:
            counts[cell["status"]] = counts.get(cell["status"], 0) + 1
        return counts

    def cell_seconds(self) -> float:
        """Sum of per-cell wall clocks — the serial-equivalent cost."""
        return sum(cell["seconds"] for cell in self.cells)

    def speedup(self) -> float:
        """Serial-equivalent seconds / sweep wall seconds."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cell_seconds() / self.wall_seconds

    def cache_counts(self) -> Dict[str, Dict[str, int]]:
        totals: Dict[str, Dict[str, int]] = {}
        for cell in self.cells:
            for kind, status in cell["cache"].items():
                slot = totals.setdefault(kind, {})
                slot[status] = slot.get(status, 0) + 1
        return totals

    def cache_hit_ratio(self, kind: str = "outcome") -> float:
        """Hits / (hits + misses) for one artifact kind over the sweep
        (cells that never consulted the cache are excluded)."""
        counts = self.cache_counts().get(kind, {})
        hits = counts.get("hit", 0)
        misses = counts.get("miss", 0)
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    def summary(self) -> Dict[str, Any]:
        reports = [cell["report"]["summary"] for cell in self.cells]
        return {
            "cells": len(self.cells),
            **self.counts(),
            "attempts": sum(r["attempts"] for r in reports),
            "faults": sum(r["faults"] for r in reports),
            "fallbacks": sum(r["fallbacks"] for r in reports),
        }

    # -- serialisation ---------------------------------------------------------

    def to_dict(self, deterministic: bool = False) -> Dict[str, Any]:
        if deterministic:
            cells = []
            for cell in self.cells:
                copy = {
                    k: v for k, v in cell.items()
                    if k not in ("seconds", "report", "report_deterministic")
                }
                copy["cache"] = {k: _SCRUBBED for k in cell["cache"]}
                copy["report"] = cell["report_deterministic"]
                cells.append(copy)
            config = self.config.replace(jobs=None, cache="off",
                                         cache_dir=None)
            return {
                "schema_version": SCHEMA_VERSION,
                "config": config.to_dict(),
                "cells": cells,
                "summary": self.summary(),
            }
        return {
            "schema_version": SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds(),
            "speedup": self.speedup(),
            "cache": self.cache_counts(),
            "cells": self.cells,
            "summary": self.summary(),
        }

    def to_json(self, deterministic: bool = False, indent: int = 2) -> str:
        import json

        return json.dumps(
            self.to_dict(deterministic), indent=indent, sort_keys=True
        )

    def save(self, path: str, deterministic: bool = False) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json(deterministic))
            handle.write("\n")

    def render_table(self) -> str:
        """Human-readable sweep table with cache-hit and speedup columns."""
        from ..evalmodel import format_table

        baselines: Dict[Tuple, float] = {}
        for cell in self.cells:
            if cell["scheme"] == "unified" and cell["cycles"]:
                baselines[
                    (cell["bench"], cell["latency"], cell["pointsto_tier"])
                ] = cell["cycles"]
        rows = []
        for cell in self.cells:
            base = baselines.get(
                (cell["bench"], cell["latency"], cell["pointsto_tier"])
            )
            rel = (
                f"{base / cell['cycles']:.3f}"
                if base and cell["cycles"] else "-"
            )
            ratio = cell.get("roofline_ratio")
            rows.append([
                cell["bench"],
                cell["scheme"],
                cell["ran_as"] if cell["ran_as"] != cell["scheme"] else "",
                f"{cell['cycles']:.0f}" if cell["cycles"] else "-",
                rel,
                f"{ratio:.2f}" if ratio else "-",
                cell["status"],
                cell["cache"]["outcome"],
                f"{cell['seconds']:.2f}",
            ])
        table = format_table(
            ["benchmark", "scheme", "ran as", "cycles", "vs unified",
             "x-roofline", "status", "cache", "secs"],
            rows,
        )
        counts = self.cache_counts().get("outcome", {})
        footer = (
            f"{len(self.cells)} cell(s) in {self.wall_seconds:.2f}s wall "
            f"({self.cell_seconds():.2f}s serial-equivalent, "
            f"{self.speedup():.2f}x speedup, {self.jobs} job(s)); "
            f"outcome cache: {counts.get('hit', 0)} hit(s), "
            f"{counts.get('miss', 0)} miss(es)"
        )
        return f"{table}\n\n{footer}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (
            f"<sweep {len(self.cells)} cells: {counts['ok']} ok, "
            f"{counts['degraded']} degraded, {counts['failed']} failed, "
            f"{self.wall_seconds:.2f}s>"
        )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class ParallelRunner:
    """Fans benchmark x scheme x latency x tier cells over a process pool.

    Example
    -------
    >>> from repro.exec import ParallelRunner, RunConfig
    >>> runner = ParallelRunner(RunConfig(jobs=4))
    >>> result = runner.sweep(benches=["rawcaudio"], schemes=["gdp"])
    """

    def __init__(self, config: Optional[RunConfig] = None):
        self.config = config or RunConfig()

    def cells(
        self,
        benches: Sequence[str],
        schemes: Iterable[str] = SWEEP_SCHEMES,
        latencies: Optional[Iterable[int]] = None,
        tiers: Optional[Iterable[str]] = None,
        sources: Optional[Dict[str, str]] = None,
    ) -> List[Dict[str, Any]]:
        """The cell payload list for a sweep (deduplicated, stable order)."""
        latencies = (
            [self.config.latency] if latencies is None else list(latencies)
        )
        tiers = (
            [self.config.pointsto_tier] if tiers is None else list(tiers)
        )
        payloads = []
        for bench in dict.fromkeys(benches):
            for tier in dict.fromkeys(tiers):
                for latency in dict.fromkeys(latencies):
                    for scheme in dict.fromkeys(schemes):
                        cfg = self.config.replace(
                            scheme=scheme, latency=latency,
                            pointsto_tier=tier,
                        )
                        payloads.append({
                            "bench": bench,
                            "source": (sources or {}).get(bench),
                            "config": cfg.to_dict(),
                        })
        return payloads

    def sweep(
        self,
        benches: Sequence[str],
        schemes: Iterable[str] = SWEEP_SCHEMES,
        latencies: Optional[Iterable[int]] = None,
        tiers: Optional[Iterable[str]] = None,
        sources: Optional[Dict[str, str]] = None,
        jobs: Optional[int] = None,
    ) -> SweepResult:
        """Run the whole sweep; one failing cell degrades, never kills.

        ``jobs=1`` runs every cell inline in this process (the serial
        baseline the determinism tests compare against); ``jobs>1`` uses
        a :class:`ProcessPoolExecutor` with that many workers.
        """
        payloads = self.cells(benches, schemes, latencies, tiers, sources)
        jobs = self.config.effective_jobs if jobs is None else jobs
        started = time.perf_counter()
        if jobs <= 1 or len(payloads) <= 1:
            results = [run_cell(payload) for payload in payloads]
            jobs = 1
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(run_cell, payloads))
        wall = time.perf_counter() - started
        return SweepResult(results, wall, jobs, self.config)
