"""Execution engine: RunConfig, artifact cache, and the parallel runner.

The public surface of the sweep machinery:

- :class:`RunConfig` — one frozen, serialisable value object for every
  execution knob (scheme, tier, machine, seed, budget, retries, faults,
  validation, jobs, cache policy).
- :class:`ArtifactCache` — content-addressed on-disk store for prepared
  programs and scheme outcomes.
- :class:`ParallelRunner` / :class:`SweepResult` — process-pool fan-out
  of benchmark x scheme x latency x tier cells, resilient per cell.
"""

from .cache import ArtifactCache, canonical_key, content_sha, default_cache_dir
from .engine import (
    SWEEP_SCHEMES,
    ParallelRunner,
    SweepResult,
    load_or_prepare,
    lookup_cached_outcome,
    run_cell,
    run_prepared_scheme,
)
from .runconfig import (
    CACHE_POLICIES,
    MACHINE_PRESETS,
    POINTSTO_TIERS,
    PROFILE_MODES,
    SCHEMA_VERSION,
    SCHEMES,
    RunConfig,
    RunConfigError,
    warn_legacy_kwarg,
)

__all__ = [
    "ArtifactCache",
    "CACHE_POLICIES",
    "MACHINE_PRESETS",
    "POINTSTO_TIERS",
    "PROFILE_MODES",
    "ParallelRunner",
    "RunConfig",
    "RunConfigError",
    "SCHEMA_VERSION",
    "SCHEMES",
    "SWEEP_SCHEMES",
    "SweepResult",
    "canonical_key",
    "content_sha",
    "default_cache_dir",
    "load_or_prepare",
    "lookup_cached_outcome",
    "run_cell",
    "run_prepared_scheme",
    "warn_legacy_kwarg",
]
