"""(De)hydration of pipeline intermediates for the artifact cache.

Operation uids are process-local (a global counter), so nothing keyed by
uid can cross a process boundary as-is.  Every artifact therefore re-keys
op-indexed data onto *stable op keys* — ``"func:block:index"`` positions
that survive the exact textual serialization round-trip of
:mod:`repro.ir.serialize` — and re-binds them onto the rehydrating
process's uids on load.

Two artifact kinds cover the pipeline:

``prepared``
    The annotated IR module (its serialized text carries the points-to
    ``mem_objects`` annotations), the execution profile re-keyed to
    stable ops, the points-to precision stats, and the coarsened
    access-pattern groups.  Rehydration skips the interpreter *and* the
    points-to solver — the two dominant cold costs.

``outcome``
    One scheme's finished product: the partitioned module text (with
    inserted ICMOVEs), the per-op cluster assignment (stable-keyed), the
    object homes, the evaluation totals, and the phase timings.
    Rehydration reconstructs a genuine
    :class:`~repro.pipeline.schemes.SchemeOutcome`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional

from ..analysis import PointsToResult, PointsToStats
from ..ir import Module
from ..ir.serialize import dumps, loads
from ..profiler import ProfileData
from .cache import content_sha


# ---------------------------------------------------------------------------
# Stable op keys
# ---------------------------------------------------------------------------


def stable_op_keys(module: Module) -> Dict[int, str]:
    """uid -> ``"func:block:index"`` for every operation in ``module``."""
    keys: Dict[int, str] = {}
    for func in module:
        for block in func:
            for index, op in enumerate(block.ops):
                keys[op.uid] = f"{func.name}:{block.name}:{index}"
    return keys


def uids_by_stable_key(module: Module) -> Dict[str, int]:
    """``"func:block:index"`` -> uid (the inverse, on a fresh module)."""
    return {key: uid for uid, key in stable_op_keys(module).items()}


def module_fingerprint(module: Module) -> str:
    """Content hash of a module: SHA-256 of its exact serialized text.

    Any IR mutation — an op added, an annotation changed, a constant
    folded — changes the fingerprint, which is what invalidates every
    downstream cache entry keyed on it.
    """
    return content_sha(dumps(module))


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


def profile_to_payload(
    profile: ProfileData, op_keys: Dict[int, str]
) -> Dict[str, Any]:
    """Serialize a profile with op counters re-keyed to stable keys."""
    return {
        "block_counts": sorted(
            [func, block, count]
            for (func, block), count in profile.block_counts.items()
        ),
        "op_object_counts": sorted(
            [op_keys[uid], dict(sorted(counts.items()))]
            for uid, counts in profile.op_object_counts.items()
            if uid in op_keys
        ),
        "op_object_regions": sorted(
            [op_keys[uid],
             sorted([obj, lo, hi] for obj, (lo, hi) in regions.items())]
            for uid, regions in profile.op_object_regions.items()
            if uid in op_keys
        ),
        "heap_sizes": dict(sorted(profile.heap_sizes.items())),
        "call_counts": dict(sorted(profile.call_counts.items())),
        "instructions_executed": profile.instructions_executed,
        "output": list(profile.output),
    }


def profile_from_payload(
    payload: Dict[str, Any], uid_by_key: Dict[str, int]
) -> ProfileData:
    """Rebuild a profile with counters re-bound onto a fresh module."""
    profile = ProfileData()
    for func, block, count in payload["block_counts"]:
        profile.block_counts[(func, block)] = count
    for key, counts in payload["op_object_counts"]:
        uid = uid_by_key.get(key)
        if uid is not None:
            profile.op_object_counts[uid] = Counter(counts)
    for key, regions in payload.get("op_object_regions", []):
        uid = uid_by_key.get(key)
        if uid is not None:
            profile.op_object_regions[uid] = {
                obj: (lo, hi) for obj, lo, hi in regions
            }
    profile.heap_sizes.update(payload["heap_sizes"])
    profile.call_counts.update(payload["call_counts"])
    profile.instructions_executed = payload["instructions_executed"]
    profile.output = list(payload["output"])
    return profile


# ---------------------------------------------------------------------------
# Points-to
# ---------------------------------------------------------------------------


class CachedPointsTo(PointsToResult):
    """A rehydrated points-to solution.

    The per-op target sets live in the module's ``mem_objects``
    annotations (they survive serialization); the precision stats were
    computed by the original solve.  Per-register queries would need the
    solver's internal facts, which are deliberately not persisted — call
    :func:`repro.analysis.solve_pointsto` for those.
    """

    def __init__(self, tier: str, stats: Dict[str, Any]):
        self.tier = tier
        self._stats = PointsToStats(**stats)

    def points_to(self, func, reg):
        raise NotImplementedError(
            "cached points-to artifacts persist per-op sets only; "
            "re-solve with repro.analysis.solve_pointsto for "
            "per-register queries"
        )

    def objects_for_op(self, func, op):
        return op.attrs.get("mem_objects", frozenset())

    def stats(self) -> PointsToStats:
        return self._stats


# ---------------------------------------------------------------------------
# Prepared programs
# ---------------------------------------------------------------------------


def prepared_key_material(
    source: str,
    name: str,
    pointsto_tier: str,
    max_steps: int = 50_000_000,
    profile: str = "dynamic",
) -> Dict[str, Any]:
    """Cache key inputs for a prepared program (compile options are the
    :meth:`PreparedProgram.from_source` defaults the engine always uses).
    ``profile`` separates interpreted profiles from statically derived
    ones — their counters differ, so they must never share an artifact."""
    return {
        "kind": "prepared",
        "source_sha": content_sha(source),
        "name": name,
        "pointsto_tier": pointsto_tier,
        "max_steps": max_steps,
        "profile": profile,
    }


def prepared_to_payload(prepared) -> Dict[str, Any]:
    """Serialize a :class:`~repro.pipeline.PreparedProgram`."""
    module_text = dumps(prepared.module)
    op_keys = stable_op_keys(prepared.module)
    return {
        "name": prepared.module.name,
        "pointsto_tier": prepared.pointsto_tier,
        "profile_mode": "static" if prepared.profile.is_static() else "dynamic",
        "ir_hash": content_sha(module_text),
        "module_text": module_text,
        "profile": profile_to_payload(prepared.profile, op_keys),
        "pointsto_stats": prepared.pointsto.stats().to_dict(),
        "merge_groups": sorted(
            sorted(group.object_ids)
            for group in prepared.merge.object_groups()
        ),
    }


def prepared_from_payload(payload: Dict[str, Any]):
    """Rehydrate a :class:`PreparedProgram` without interpreting or
    re-solving points-to (the module text carries the annotations)."""
    from ..pipeline.prepared import PreparedProgram

    module = loads(payload["module_text"])
    pointsto = CachedPointsTo(
        payload["pointsto_tier"], payload["pointsto_stats"]
    )
    if payload.get("profile_mode", "dynamic") == "static":
        # Static profiles are pure functions of the annotated module, and
        # rebuilding them is cheap (no interpretation) — cheaper and more
        # robust than persisting the infinite-valued bound tables.
        return PreparedProgram(
            module, pointsto=pointsto, profile_mode="static",
            pointsto_tier=payload["pointsto_tier"], _legacy_warn=False,
        )
    profile = profile_from_payload(
        payload["profile"], uids_by_stable_key(module)
    )
    return PreparedProgram(
        module, profile=profile, pointsto=pointsto,
        pointsto_tier=payload["pointsto_tier"], _legacy_warn=False,
    )


# ---------------------------------------------------------------------------
# Scheme outcomes
# ---------------------------------------------------------------------------


def outcome_key_material(
    ir_hash: str,
    machine,
    pointsto_tier: str,
    scheme: str,
    seed: int,
) -> Dict[str, Any]:
    """Cache key inputs for one scheme outcome: the paper sweep's cell
    coordinates — IR content, machine config, tier, scheme, seed."""
    return {
        "kind": "outcome",
        "ir_hash": ir_hash,
        "machine": machine.fingerprint(),
        "pointsto_tier": pointsto_tier,
        "scheme": scheme,
        "seed": seed,
        # Payload schema revision: bumping it retires artifacts whose
        # payloads predate a field the engine now reads (v2 added the
        # data-movement roofline summary).
        "schema": 2,
    }


def outcome_to_payload(outcome) -> Dict[str, Any]:
    """Serialize a :class:`~repro.pipeline.schemes.SchemeOutcome`."""
    module_text = dumps(outcome.module)
    op_keys = stable_op_keys(outcome.module)
    return {
        "scheme": outcome.scheme,
        "module_text": module_text,
        "assignment": sorted(
            [op_keys[uid], cluster]
            for uid, cluster in outcome.assignment.items()
            if uid in op_keys
        ),
        "object_home": (
            dict(sorted(outcome.object_home.items()))
            if outcome.object_home is not None
            else None
        ),
        "eval": {
            "cycles": outcome.eval.cycles,
            "dynamic_moves": outcome.eval.dynamic_moves,
            "static_moves": outcome.eval.static_moves,
            "blocks": sorted(
                [func, block, stats.length, stats.frequency, stats.moves]
                for (func, block), stats in outcome.eval.blocks.items()
            ),
        },
        "timings": dict(sorted(outcome.timings.items())),
        "rhop_runs": outcome.rhop_runs,
        "roofline": (
            dict(sorted(outcome.roofline.items()))
            if outcome.roofline is not None
            else None
        ),
    }


def outcome_from_payload(payload: Dict[str, Any], machine):
    """Rehydrate a full :class:`SchemeOutcome` (module, assignment,
    homes, eval) from its artifact."""
    from ..evalmodel.cycles import BlockStats, EvalResult
    from ..pipeline.schemes import SchemeOutcome

    module = loads(payload["module_text"])
    uid_by_key = uids_by_stable_key(module)
    assignment = {
        uid_by_key[key]: cluster for key, cluster in payload["assignment"]
    }
    eval_result = EvalResult()
    eval_result.cycles = payload["eval"]["cycles"]
    eval_result.dynamic_moves = payload["eval"]["dynamic_moves"]
    eval_result.static_moves = payload["eval"]["static_moves"]
    for func, block, length, frequency, moves in payload["eval"]["blocks"]:
        eval_result.blocks[(func, block)] = BlockStats(
            length, frequency, moves
        )
    object_home: Optional[Dict[str, int]] = payload["object_home"]
    outcome = SchemeOutcome(
        payload["scheme"],
        machine,
        module,
        assignment,
        dict(object_home) if object_home is not None else None,
        eval_result,
        dict(payload["timings"]),
        payload["rhop_runs"],
    )
    roofline = payload.get("roofline")
    outcome.roofline = dict(roofline) if roofline is not None else None
    return outcome
