"""Bottom-Up Greedy (BUG) operation partitioning.

The first clustering algorithm, from Ellis's Bulldog compiler [5], kept
here as a literature baseline for the computation-partitioning phase:
operations are assigned to clusters one at a time, greedily minimising
the estimated completion time of each operation given where its operands
live and how loaded each cluster's function units already are.

It honours the same memory locks as RHOP, so it can serve as a drop-in
phase-2 replacement in ablation studies (GDP homes + BUG computation).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.cfg import CFG
from ..ir import Function, Module
from ..machine import Machine
from ..schedule.depgraph import DependenceGraph
from .estimator import effective_move_latency
from .rhop import RHOPResult, record_infeasible_locks


class BUG:
    """Greedy per-operation partitioner (Bulldog-style)."""

    def __init__(self, machine: Machine):
        self.machine = machine

    def partition_module(
        self, module: Module, mem_locks: Optional[Dict[int, int]] = None
    ) -> RHOPResult:
        result = RHOPResult(phase="bug")
        for func in module:
            self.partition_function(func, result, mem_locks or {})
        return result

    def partition_function(
        self,
        func: Function,
        result: Optional[RHOPResult] = None,
        mem_locks: Optional[Dict[int, int]] = None,
    ) -> RHOPResult:
        result = result or RHOPResult(phase="bug")
        mem_locks = mem_locks or {}
        # Same reporting path as RHOP: locks the machine cannot execute
        # are recorded for the validity checker, never silently dropped.
        record_infeasible_locks(self.machine, func, mem_locks, result)
        homes = result.homes_for(func.name)
        cfg = CFG(func)
        for name in cfg.reverse_postorder():
            block = func.blocks[name]
            if block.ops:
                self._partition_block(func, block, homes, mem_locks, result)
        return result

    def _partition_block(self, func, block, homes, mem_locks, result) -> None:
        machine = self.machine
        k = machine.num_clusters
        move_latency = effective_move_latency(machine)
        graph = DependenceGraph(block, machine.latency_of)

        # Per-cluster, per-FU-class accumulated work (resource pressure).
        load: Dict[tuple, float] = {}
        ready: Dict[int, float] = {}  # op uid -> completion time estimate
        value_cluster: Dict[int, int] = {}  # vid -> cluster holding the value

        for vid, home in homes.items():
            value_cluster[vid] = home

        for op in graph.ops:
            choices = range(k)
            forced = False
            if op.uid in mem_locks:
                choices = [mem_locks[op.uid]]
                forced = True
            elif op.dest is not None and op.dest.vid in homes:
                choices = [homes[op.dest.vid]]
                forced = True

            best_cluster, best_cost = 0, None
            for c in choices:
                cls = machine.fu_class_of(op)
                if not forced and cls is not None and machine.units(c, cls) == 0:
                    continue
                # Operand availability including a move penalty for values
                # living on other clusters.
                avail = 0.0
                for edge in graph.preds[op.uid]:
                    if not edge.is_flow():
                        continue
                    t = ready.get(edge.src, 0.0)
                    src_op = graph.op_by_uid[edge.src]
                    src_cluster = result.assignment.get(src_op.uid, c)
                    if src_cluster != c:
                        t += move_latency
                    avail = max(avail, t)
                for src in op.register_srcs():
                    owner = value_cluster.get(src.vid)
                    if owner is not None and owner != c:
                        avail = max(avail, float(move_latency))
                pressure = 0.0
                if cls is not None:
                    # A forced choice may sit on a cluster with no unit of
                    # the class (recorded as an infeasible lock above);
                    # floor the divisor so the estimate stays finite.
                    units = max(machine.units(c, cls), 1)
                    pressure = load.get((c, cls), 0.0) / units
                finish = max(avail, pressure) + machine.latency_of(op)
                if best_cost is None or finish < best_cost:
                    best_cost = finish
                    best_cluster = c
            if best_cost is None:
                best_cluster = 0
                best_cost = float(machine.latency_of(op))

            result.assignment[op.uid] = best_cluster
            ready[op.uid] = best_cost
            cls = machine.fu_class_of(op)
            if cls is not None:
                key = (best_cluster, cls)
                load[key] = load.get(key, 0.0) + 1.0
            if op.dest is not None:
                value_cluster[op.dest.vid] = best_cluster
                if op.dest.vid not in homes:
                    homes[op.dest.vid] = best_cluster

        param_vids = {p.vid for p in func.params}
        for op in block.ops:
            for src in op.register_srcs():
                if src.vid in param_vids and src.vid not in homes:
                    homes[src.vid] = result.assignment[op.uid]
