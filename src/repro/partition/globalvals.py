"""Terechko-style global-value placement schemes.

Terechko et al. [21] "evaluated several different schemes of partitioning
data, including unified, round-robin, affinity and 2-pass schemes" for
global values on clustered VLIWs.  These simple object-placement policies
are kept as ablation baselines: each produces an ``object_home`` map that
plugs into the locked phase-2 RHOP run (via
``run_gdp(..., object_home=...)``).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.objects import ObjectTable


def single_cluster_homes(objects: ObjectTable, k: int = 2) -> Dict[str, int]:
    """Every object on cluster 0 (Terechko's "unified" placement: all
    globals in one memory)."""
    return {obj.id: 0 for obj in objects}


def round_robin_homes(objects: ObjectTable, k: int = 2) -> Dict[str, int]:
    """Objects dealt round-robin across cluster memories in declaration
    order — balances counts, ignores both sizes and affinity."""
    homes: Dict[str, int] = {}
    for i, obj_id in enumerate(sorted(objects.ids())):
        homes[obj_id] = i % k
    return homes


def size_balanced_homes(objects: ObjectTable, k: int = 2) -> Dict[str, int]:
    """Largest-first size balancing (no affinity): each object goes to the
    currently lightest memory."""
    loads = [0] * k
    homes: Dict[str, int] = {}
    for obj in sorted(objects, key=lambda o: (-o.size, o.id)):
        cluster = min(range(k), key=lambda c: loads[c])
        homes[obj.id] = cluster
        loads[cluster] += obj.size
    return homes


def affinity_homes(
    objects: ObjectTable,
    access_counts: Dict[str, int],
    k: int = 2,
    balance: float = 1.5,
) -> Dict[str, int]:
    """Affinity placement: objects in dynamic-access order, each to the
    lightest cluster by *access traffic* so hot objects spread out, with a
    byte-balance cap of ``balance`` x the even split."""
    total = objects.total_size()
    cap = balance * total / k if total else float("inf")
    byte_loads = [0.0] * k
    traffic_loads = [0.0] * k
    homes: Dict[str, int] = {}
    ordered = sorted(
        objects, key=lambda o: (-access_counts.get(o.id, 0), o.id)
    )
    for obj in ordered:
        choices = sorted(range(k), key=lambda c: (traffic_loads[c], c))
        cluster = next(
            (c for c in choices if byte_loads[c] + obj.size <= cap or obj.size > cap),
            choices[0],
        )
        homes[obj.id] = cluster
        byte_loads[cluster] += obj.size
        traffic_loads[cluster] += access_counts.get(obj.id, 0)
    return homes
