"""Memory-operation cluster locks derived from data-object homes.

Once phase 1 fixes every object's home cluster, each load/store (and each
``malloc``) is locked to the home of the object(s) it accesses — Section
3.4: "all memory access operations will always be placed on their assigned
clusters".
"""

from __future__ import annotations

from typing import Counter as CounterT, Dict, Optional

from ..ir import Module, Opcode


def memory_locks(
    module: Module,
    object_home: Dict[str, int],
    access_counts: Optional[Dict[str, int]] = None,
) -> Dict[int, int]:
    """Op uid -> cluster for every memory operation in the module.

    When an operation may touch objects homed on different clusters (only
    possible for schemes that place objects independently, e.g. Naïve),
    the home of the most-accessed object wins; ``access_counts`` maps
    object ids to dynamic access counts for that tie-break.
    """
    access_counts = access_counts or {}
    locks: Dict[int, int] = {}
    for func in module:
        for op in func.operations():
            if not (op.is_memory_access() or op.opcode is Opcode.MALLOC):
                continue
            objs = [o for o in op.mem_objects() if o in object_home]
            if not objs:
                continue
            homes = {object_home[o] for o in objs}
            if len(homes) == 1:
                locks[op.uid] = homes.pop()
            else:
                best = max(
                    objs, key=lambda o: (access_counts.get(o, 0), o)
                )
                locks[op.uid] = object_home[best]
    return locks
