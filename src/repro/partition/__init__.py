"""Partitioning algorithms: the multilevel graph partitioner, the paper's
Global Data Partitioning (phase 1), the RHOP computation partitioner
(phase 2), memory locks, and intercluster move insertion."""

from .bugalgo import BUG
from .globalvals import (
    affinity_homes,
    round_robin_homes,
    single_cluster_homes,
    size_balanced_homes,
)
from .assign import InsertionStats, count_static_moves, insert_intercluster_moves
from .estimator import Anchor, INFEASIBLE, ScheduleEstimator
from .gdp import DataPartition, GDPConfig, build_group_graph, gdp_partition
from .locks import memory_locks
from .merges import (
    MergedGroup,
    MergeResult,
    UnionFind,
    access_pattern_merge,
    slack_merge,
)
from .multilevel import MultilevelPartitioner, PartitionGraph, partition_balance
from .rhop import RHOP, RHOPConfig, RHOPResult

__all__ = [
    "BUG",
    "affinity_homes",
    "round_robin_homes",
    "single_cluster_homes",
    "size_balanced_homes",
    "InsertionStats",
    "count_static_moves",
    "insert_intercluster_moves",
    "Anchor",
    "INFEASIBLE",
    "ScheduleEstimator",
    "DataPartition",
    "GDPConfig",
    "build_group_graph",
    "gdp_partition",
    "memory_locks",
    "MergedGroup",
    "MergeResult",
    "UnionFind",
    "access_pattern_merge",
    "slack_merge",
    "MultilevelPartitioner",
    "PartitionGraph",
    "partition_balance",
    "RHOP",
    "RHOPConfig",
    "RHOPResult",
]
