"""Access-pattern merges (Section 3.3.1 of the paper).

Coarsening of the program-level graph before data partitioning:

* "when a single memory operation accesses multiple data objects, these
  objects are merged together" — placing them apart would force transfers;
* "when multiple memory operations access a single data object, those
  memory operations will be merged together.  Any other objects accessed
  by these operations will then be merged in as well."

Both rules are one transitive closure: union every memory operation with
every object it may access.  The resulting groups are the atomic units the
data partitioner places.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..analysis.dfg import ProgramGraph
from ..analysis.objects import ObjectTable


class UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self):
        self.parent: Dict[Hashable, Hashable] = {}
        self.size: Dict[Hashable, int] = {}

    def find(self, x: Hashable) -> Hashable:
        if x not in self.parent:
            self.parent[x] = x
            self.size[x] = 1
            return x
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra

    def same(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)


class MergedGroup:
    """One coarsened node: a set of operations plus the objects they touch."""

    def __init__(self, gid: int):
        self.gid = gid
        self.op_uids: Set[int] = set()
        self.object_ids: Set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<group {self.gid}: {len(self.op_uids)} ops, "
            f"objects={sorted(self.object_ids)}>"
        )


class MergeResult:
    """Outcome of the access-pattern merge phase."""

    def __init__(self):
        self.groups: Dict[int, MergedGroup] = {}
        self.group_of_op: Dict[int, int] = {}
        self.group_of_object: Dict[str, int] = {}

    def object_groups(self) -> List[MergedGroup]:
        """Groups that contain at least one data object."""
        return [g for g in self.groups.values() if g.object_ids]

    def group_count(self) -> int:
        return len(self.groups)


def access_pattern_merge(
    graph: ProgramGraph, objects: ObjectTable
) -> MergeResult:
    """Coarsen the program graph by the paper's access-pattern rules."""
    uf = UnionFind()

    # Ensure every op node and every object exists in the structure.
    for uid in graph.nodes:
        uf.find(("op", uid))
    for obj_id in objects.ids():
        uf.find(("obj", obj_id))

    # The single transitive rule: op <-> each object it may access.
    for node in graph.memory_nodes():
        for obj_id in node.op.mem_objects():
            uf.union(("op", node.uid), ("obj", obj_id))

    result = MergeResult()
    root_to_gid: Dict[Hashable, int] = {}

    def group_for(key: Hashable) -> MergedGroup:
        root = uf.find(key)
        if root not in root_to_gid:
            gid = len(root_to_gid)
            root_to_gid[root] = gid
            result.groups[gid] = MergedGroup(gid)
        return result.groups[root_to_gid[root]]

    for uid in graph.nodes:
        group = group_for(("op", uid))
        group.op_uids.add(uid)
        result.group_of_op[uid] = group.gid
    for obj_id in objects.ids():
        group = group_for(("obj", obj_id))
        group.object_ids.add(obj_id)
        result.group_of_object[obj_id] = group.gid
    return result


def slack_merge(
    graph: ProgramGraph,
    objects: ObjectTable,
    depgraphs,
    slack_threshold: int = 1,
) -> MergeResult:
    """Alternative coarsening that additionally merges low-slack dependent
    operations (the variant Section 3.3.1 evaluated and rejected: "merging
    based on computation dependencies can negatively affect the resulting
    object partitioning").  Kept for the ablation benchmark.

    ``depgraphs`` is an iterable of :class:`~repro.schedule.DependenceGraph`
    covering the blocks of the program.
    """
    uf = UnionFind()
    for uid in graph.nodes:
        uf.find(("op", uid))
    for obj_id in objects.ids():
        uf.find(("obj", obj_id))
    for node in graph.memory_nodes():
        for obj_id in node.op.mem_objects():
            uf.union(("op", node.uid), ("obj", obj_id))

    for dg in depgraphs:
        for edge in dg.flow_edges():
            if dg.slack(edge) <= slack_threshold:
                uf.union(("op", edge.src), ("op", edge.dst))

    result = MergeResult()
    root_to_gid: Dict[Hashable, int] = {}

    def group_for(key: Hashable) -> MergedGroup:
        root = uf.find(key)
        if root not in root_to_gid:
            gid = len(root_to_gid)
            root_to_gid[root] = gid
            result.groups[gid] = MergedGroup(gid)
        return result.groups[root_to_gid[root]]

    for uid in graph.nodes:
        group = group_for(("op", uid))
        group.op_uids.add(uid)
        result.group_of_op[uid] = group.gid
    for obj_id in objects.ids():
        group = group_for(("obj", obj_id))
        group.object_ids.add(obj_id)
        result.group_of_object[obj_id] = group.gid
    return result
