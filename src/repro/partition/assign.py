"""Cluster binding and intercluster move insertion.

Given a per-operation cluster assignment, rewrite the function so every
value is read on the cluster that computes with it: for each virtual
register consumed on a cluster other than (all of) its definition
cluster(s), a copy register is created, an explicit ``ICMOVE`` is inserted
after each remote definition (a plain ``MOV`` after local ones, in the
rare mixed-definition case), and consuming operations are rewritten.

This realises the paper's machine model: "Transfers of values between
clusters are accomplished through explicit move operations that travel
through an interconnection network."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import Function, Opcode, Operation, VirtualRegister
from ..machine import Machine


class InsertionStats:
    """What move insertion did to one function."""

    def __init__(self):
        self.icmoves = 0
        self.local_copies = 0
        self.rewritten_uses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<insertion: {self.icmoves} icmoves, "
            f"{self.local_copies} local copies>"
        )


def insert_intercluster_moves(
    func: Function,
    assignment: Dict[int, int],
    machine: Machine,
    param_homes: Optional[Dict[int, int]] = None,
) -> InsertionStats:
    """Mutates ``func`` in place and extends ``assignment`` with the
    clusters of inserted operations.

    ``param_homes`` gives the cluster where each parameter value arrives
    (defaults to the majority cluster of its uses).
    """
    stats = InsertionStats()
    if machine.num_clusters == 1:
        return stats

    param_homes = dict(param_homes or {})

    # Collect defs and uses of every register.
    defs_of: Dict[int, List[Operation]] = {}
    use_clusters: Dict[int, Set[int]] = {}
    for op in func.operations():
        if op.dest is not None:
            defs_of.setdefault(op.dest.vid, []).append(op)
        for src in op.register_srcs():
            use_clusters.setdefault(src.vid, set()).add(assignment[op.uid])

    for p in func.params:
        if p.vid not in param_homes:
            clusters = use_clusters.get(p.vid)
            if clusters:
                counts: Dict[int, int] = {}
                for op in func.operations():
                    for src in op.register_srcs():
                        if src.vid == p.vid:
                            c = assignment[op.uid]
                            counts[c] = counts.get(c, 0) + 1
                param_homes[p.vid] = max(counts, key=lambda c: (counts[c], -c))
            else:
                param_homes[p.vid] = 0

    param_vids = {p.vid for p in func.params}

    def source_clusters(vid: int) -> Set[int]:
        clusters = {assignment[d.uid] for d in defs_of.get(vid, ())}
        if vid in param_vids:
            clusters.add(param_homes[vid])
        return clusters

    # Which (vreg, cluster) copies are needed?
    needs: Set[Tuple[int, int]] = set()
    for vid, clusters in use_clusters.items():
        sources = source_clusters(vid)
        if not sources:
            continue  # use of a never-defined register; verifier catches it
        for cu in clusters:
            if sources != {cu}:
                needs.add((vid, cu))

    if not needs:
        return stats

    # Create copy registers.
    copy_reg: Dict[Tuple[int, int], VirtualRegister] = {}
    reg_by_vid: Dict[int, VirtualRegister] = {}
    for op in func.operations():
        if op.dest is not None:
            reg_by_vid.setdefault(op.dest.vid, op.dest)
        for src in op.register_srcs():
            reg_by_vid.setdefault(src.vid, src)
    for p in func.params:
        reg_by_vid.setdefault(p.vid, p)
    for vid, cu in sorted(needs):
        base = reg_by_vid[vid]
        copy_reg[(vid, cu)] = func.new_vreg(base.ty, f"{base.name or 'v'}@c{cu}")

    inserted: Set[int] = set()

    def make_copy(vid: int, src_cluster: int, cu: int) -> Operation:
        base = reg_by_vid[vid]
        dest = copy_reg[(vid, cu)]
        if src_cluster == cu:
            op = Operation(Opcode.MOV, dest, [base])
            stats.local_copies += 1
        else:
            op = Operation(
                Opcode.ICMOVE,
                dest,
                [base],
                attrs={"from": src_cluster, "to": cu},
            )
            stats.icmoves += 1
        assignment[op.uid] = cu
        inserted.add(op.uid)
        return op

    # Insert copies after each definition (and at entry for parameters).
    needed_vids: Dict[int, List[int]] = {}
    for vid, cu in sorted(needs):
        needed_vids.setdefault(vid, []).append(cu)

    for block in func:
        i = 0
        while i < len(block.ops):
            op = block.ops[i]
            if op.uid not in inserted and op.dest is not None:
                vid = op.dest.vid
                if vid in needed_vids:
                    offset = 1
                    for cu in sorted(needed_vids[vid]):
                        block.insert(
                            i + offset, make_copy(vid, assignment[op.uid], cu)
                        )
                        offset += 1
                    i += offset - 1
            i += 1

    entry = func.entry
    at = 0
    for p in func.params:
        if p.vid in needed_vids:
            for cu in sorted(needed_vids[p.vid]):
                entry.insert(at, make_copy(p.vid, param_homes[p.vid], cu))
                at += 1

    # Rewrite uses on clusters that now own a copy.
    for block in func:
        for op in block.ops:
            if op.uid in inserted:
                continue
            cu = assignment[op.uid]
            for src in list(op.register_srcs()):
                key = (src.vid, cu)
                if key in copy_reg:
                    stats.rewritten_uses += op.replace_src(src, copy_reg[key])
    return stats


def count_static_moves(func: Function) -> int:
    """ICMOVE operations present in a function."""
    return sum(1 for op in func.operations() if op.is_icmove())
