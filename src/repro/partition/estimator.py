"""Schedule-length estimation for RHOP clustering decisions.

RHOP's defining feature (Chu et al., PLDI 2003) is choosing cluster moves
by *estimated* schedule length rather than by edge cut: "These were used
in order to estimate the schedule length impact of clustering decisions
without requiring the need to actually schedule the code."

The estimate for one block under a tentative cluster assignment is

    max( critical path with intercluster penalties,
         per-cluster resource bounds,
         intercluster bus bandwidth bound )

Anchors model values that are live into the block from operations already
placed in other blocks: using such a value from the wrong cluster adds a
move at block entry.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import Opcode, Operation
from ..machine import FUClass, Machine
from ..schedule.depgraph import DependenceGraph

INFEASIBLE = float("inf")

#: Critical-path latency the estimator assumes for one intercluster move.
#: RHOP's schedule estimates model a pipelined bus whose transfer latency
#: overlaps with surrounding iterations (the PLDI'03 formulation targets
#: latency-1 moves); the cycle-accurate evaluation still exposes the full
#: configured latency.  This optimism is what keeps the unified baseline
#: spreading computation at 5- and 10-cycle latencies, as in the paper.
ESTIMATOR_MOVE_OVERLAP_CAP = 2


def effective_move_latency(machine: "Machine") -> int:
    """Move latency as seen by schedule estimates (see above)."""
    return min(machine.move_latency, ESTIMATOR_MOVE_OVERLAP_CAP)


class Anchor:
    """A value live into the block, already homed on ``cluster``."""

    __slots__ = ("key", "cluster", "use_uids")

    def __init__(self, key, cluster: int, use_uids: Set[int]):
        self.key = key
        self.cluster = cluster
        self.use_uids = set(use_uids)


class ScheduleEstimator:
    """Estimates block schedule length under candidate assignments."""

    def __init__(
        self,
        graph: DependenceGraph,
        machine: Machine,
        anchors: Iterable[Anchor] = (),
    ):
        self.graph = graph
        self.machine = machine
        self.anchors = list(anchors)
        self._anchor_uses: Dict[int, List[Anchor]] = {}
        for anchor in self.anchors:
            for uid in anchor.use_uids:
                self._anchor_uses.setdefault(uid, []).append(anchor)
        # Static per-op data reused across many estimate() calls.
        self._latency: Dict[int, int] = {
            op.uid: machine.latency_of(op) for op in graph.ops
        }
        self._fu_class: Dict[int, Optional[FUClass]] = {
            op.uid: machine.fu_class_of(op) for op in graph.ops
        }
        self._order = [op.uid for op in graph.ops]

    # -- the estimate -------------------------------------------------------------

    def estimate(self, cluster_of: Dict[int, int], exposed: bool = False) -> float:
        """Estimated schedule length; ``INFEASIBLE`` when an op sits on a
        cluster lacking its function-unit class.

        ``cluster_of`` may be *partial* (initial placement proceeds group
        by group): operations without an assignment contribute no resource
        pressure and their edges carry no intercluster penalty, so early
        placement decisions are unbiased by not-yet-placed code.

        ``exposed=True`` charges the full configured move latency instead
        of the optimistic pipelined-bus latency — used to arbitrate
        between finished candidate partitions."""
        machine = self.machine
        move_latency = (
            machine.move_latency if exposed else effective_move_latency(machine)
        )

        # Resource bounds.
        counts: Dict[Tuple[int, FUClass], int] = {}
        for uid in self._order:
            cls = self._fu_class[uid]
            if cls is None:
                continue
            cluster = cluster_of.get(uid)
            if cluster is None:
                continue
            if machine.units(cluster, cls) == 0:
                return INFEASIBLE
            key = (cluster, cls)
            counts[key] = counts.get(key, 0) + 1
        res_bound = 0.0
        for (cluster, cls), n in counts.items():
            res_bound = max(res_bound, n / machine.units(cluster, cls))

        # Bus bound: one move per distinct (producer, consumer-cluster)
        # cut flow pair, plus anchor values imported from other clusters.
        moves: Set[Tuple] = set()
        for edge in self.graph.edges:
            if edge.is_flow():
                cs = cluster_of.get(edge.src)
                cd = cluster_of.get(edge.dst)
                if cs is not None and cd is not None and cs != cd:
                    moves.add((edge.src, cd))
        for anchor in self.anchors:
            for uid in anchor.use_uids:
                cu = cluster_of.get(uid)
                if cu is not None and cu != anchor.cluster:
                    moves.add((anchor.key, cu))
        bus_bound = len(moves) / machine.network.bandwidth

        # Critical path with intercluster penalties on cut flow edges.
        start: Dict[int, int] = {}
        completion = 0
        for uid in self._order:
            t = 0
            cu = cluster_of.get(uid)
            if cu is not None:
                for anchor in self._anchor_uses.get(uid, ()):
                    if cu != anchor.cluster:
                        t = max(t, move_latency)
            for edge in self.graph.preds[uid]:
                delay = edge.delay
                if edge.is_flow():
                    cs = cluster_of.get(edge.src)
                    if cs is not None and cu is not None and cs != cu:
                        delay += move_latency
                t = max(t, start[edge.src] + delay)
            start[uid] = t
            completion = max(completion, t + self._latency[uid])

        return max(float(completion), math.ceil(res_bound), math.ceil(bus_bound))

    def move_count(self, cluster_of: Dict[int, int]) -> int:
        """Static intercluster moves this (possibly partial) assignment
        implies for the block."""
        moves: Set[Tuple] = set()
        for edge in self.graph.edges:
            if not edge.is_flow():
                continue
            cs = cluster_of.get(edge.src)
            cd = cluster_of.get(edge.dst)
            if cs is not None and cd is not None and cs != cd:
                moves.add((edge.src, cd))
        for anchor in self.anchors:
            for uid in anchor.use_uids:
                cu = cluster_of.get(uid)
                if cu is not None and cu != anchor.cluster:
                    moves.add((anchor.key, cu))
        return len(moves)
