"""Multilevel k-way graph partitioner (the METIS substitute).

The paper partitions its program-level graph with METIS: "METIS tries to
divide the nodes into separate partitions by minimizing the number of
edges cut while also trying to balance the node weights."  This module
implements the same multilevel scheme from scratch:

1. **Coarsening** — repeated heavy-edge matching collapses the graph until
   it is small;
2. **Initial partitioning** — greedy growth on the coarsest graph;
3. **Uncoarsening** — the assignment is projected back level by level and
   improved with Fiduccia–Mattheyses-style boundary refinement.

Node weights are *vectors* (multi-constraint, as METIS supports and the
paper uses for data sizes); balance is enforced per dimension with a
parameterisable imbalance ratio — the knob Section 4.3 of the paper refers
to ("allowing for more imbalance of the resulting partition in METIS").
Nodes may be *fixed* to a cluster; fixed nodes never move (used to honor
pre-placed objects and for ablation studies).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..resilience.budget import Budget, budget_expired

Node = Hashable


class PartitionGraph:
    """An undirected weighted graph with vector node weights."""

    def __init__(self, weight_dims: int = 1):
        self.weight_dims = weight_dims
        self.weights: Dict[Node, Tuple[float, ...]] = {}
        self.adj: Dict[Node, Dict[Node, float]] = {}
        self.fixed: Dict[Node, int] = {}

    def add_node(self, node: Node, weight: Sequence[float]) -> None:
        if len(weight) != self.weight_dims:
            raise ValueError(
                f"weight has {len(weight)} dims, graph expects {self.weight_dims}"
            )
        self.weights[node] = tuple(float(w) for w in weight)
        self.adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        if u == v:
            return
        if u not in self.weights or v not in self.weights:
            raise KeyError("add_edge on unknown node")
        self.adj[u][v] = self.adj[u].get(v, 0.0) + weight
        self.adj[v][u] = self.adj[v].get(u, 0.0) + weight

    def fix(self, node: Node, cluster: int) -> None:
        self.fixed[node] = cluster

    def node_count(self) -> int:
        return len(self.weights)

    def total_weight(self) -> Tuple[float, ...]:
        totals = [0.0] * self.weight_dims
        for w in self.weights.values():
            for d in range(self.weight_dims):
                totals[d] += w[d]
        return tuple(totals)

    def node_order(self) -> Dict[Node, int]:
        """Stable insertion-order index used for deterministic tie-breaks."""
        return {node: i for i, node in enumerate(self.weights)}

    def cut_weight(self, assignment: Dict[Node, int]) -> float:
        cut = 0.0
        order = self.node_order()
        for u, nbrs in self.adj.items():
            for v, w in nbrs.items():
                if order[u] < order[v] and assignment[u] != assignment[v]:
                    cut += w
        return cut


class _Level:
    """One coarsening level: the coarse graph plus the fine->coarse map."""

    def __init__(self, graph: PartitionGraph, projection: Dict[Node, Node]):
        self.graph = graph
        self.projection = projection  # fine node -> coarse node


class MultilevelPartitioner:
    """K-way multilevel partitioner with multi-constraint balance."""

    def __init__(
        self,
        k: int = 2,
        imbalance: Sequence[float] = (1.15,),
        seed: int = 12345,
        coarsen_to: Optional[int] = None,
        refine_passes: int = 4,
        restarts: int = 4,
        budget: Optional[Budget] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.k = k
        self.imbalance = tuple(imbalance)
        self.seed = seed
        self.coarsen_to = coarsen_to or max(24, 6 * k)
        self.refine_passes = refine_passes
        self.restarts = restarts
        #: Cooperative deadline (anytime behaviour): the first V-cycle
        #: always completes so an assignment always exists; on expiry the
        #: remaining restarts and refinement passes are skipped and the
        #: best assignment found so far is returned.
        self.budget = budget

    # -- public API --------------------------------------------------------------

    def partition(self, graph: PartitionGraph) -> Dict[Node, int]:
        """Partition the graph; returns node -> cluster in [0, k).

        Runs ``restarts`` independent multilevel passes (different
        coarsening/initial-partition randomisation) and keeps the best
        result by (balance violation, cut weight) — multi-start V-cycles,
        as METIS does with multiple initial partitions."""
        if len(self.imbalance) != graph.weight_dims:
            raise ValueError(
                f"imbalance has {len(self.imbalance)} dims, graph has "
                f"{graph.weight_dims}"
            )
        if graph.node_count() == 0:
            return {}
        if self.k == 1:
            return {n: 0 for n in graph.weights}

        best: Optional[Dict[Node, int]] = None
        best_key = None
        for attempt in range(self.restarts):
            if attempt > 0 and budget_expired(self.budget):
                break  # anytime: keep the best completed V-cycle
            assignment = self._one_cycle(graph, random.Random(self.seed + attempt))
            key = (self._violation(graph, assignment), graph.cut_weight(assignment))
            if best_key is None or key < best_key:
                best_key = key
                best = assignment
        assert best is not None
        return best

    def _one_cycle(self, graph: PartitionGraph, rng: random.Random) -> Dict[Node, int]:
        levels = self._coarsen(graph, rng)
        coarsest = levels[-1].graph if levels else graph
        assignment = self._initial_partition(coarsest, rng)
        assignment = self._refine(coarsest, assignment, rng)
        for level in reversed(levels):
            fine = self._fine_graph(level, levels, graph)
            projected = {
                node: assignment[level.projection[node]]
                for node in fine.weights
            }
            # On budget expiry keep projecting (the assignment must reach
            # the original graph's nodes) but skip the refinement work.
            assignment = (
                projected
                if budget_expired(self.budget)
                else self._refine(fine, projected, rng)
            )
        return assignment

    def _violation(self, graph: PartitionGraph, assignment: Dict[Node, int]) -> float:
        """Total relative overshoot of the balance constraints."""
        totals = graph.total_weight()
        loads = partition_balance(graph, assignment, self.k)
        overshoot = 0.0
        for d in range(graph.weight_dims):
            if totals[d] <= 0:
                continue
            cap = self.imbalance[d] * totals[d] / self.k
            for c in range(self.k):
                over = loads[c][d] - cap
                if over > 1e-9:
                    overshoot += over / totals[d]
        return overshoot

    def _fine_graph(
        self, level: _Level, levels: List[_Level], original: PartitionGraph
    ) -> PartitionGraph:
        idx = levels.index(level)
        return original if idx == 0 else levels[idx - 1].graph

    # -- coarsening -----------------------------------------------------------------

    def _coarsen(self, graph: PartitionGraph, rng: random.Random) -> List[_Level]:
        levels: List[_Level] = []
        current = graph
        totals = graph.total_weight()
        # Cap merged node weight so single coarse nodes stay movable.
        caps = [
            max(t * 1.5 / self.k, 1.0) if t > 0 else float("inf") for t in totals
        ]
        while current.node_count() > self.coarsen_to:
            matched: Dict[Node, Node] = {}
            order = list(current.weights)
            rng.shuffle(order)
            for node in order:
                if node in matched:
                    continue
                best = None
                best_w = 0.0
                for nbr, w in current.adj[node].items():
                    if nbr in matched or nbr == node:
                        continue
                    if not self._merge_allowed(current, node, nbr, caps):
                        continue
                    if w > best_w:
                        best, best_w = nbr, w
                if best is not None:
                    matched[node] = best
                    matched[best] = node
            pair_count = len(matched) // 2
            if pair_count == 0 or pair_count < 0.05 * current.node_count():
                break
            coarse, projection = self._contract(current, matched)
            levels.append(_Level(coarse, projection))
            current = coarse
        return levels

    def _merge_allowed(
        self, graph: PartitionGraph, u: Node, v: Node, caps: List[float]
    ) -> bool:
        fu, fv = graph.fixed.get(u), graph.fixed.get(v)
        if fu is not None and fv is not None and fu != fv:
            return False
        wu, wv = graph.weights[u], graph.weights[v]
        return all(
            wu[d] + wv[d] <= caps[d] for d in range(graph.weight_dims)
        )

    def _contract(
        self, graph: PartitionGraph, matched: Dict[Node, Node]
    ) -> Tuple[PartitionGraph, Dict[Node, Node]]:
        coarse = PartitionGraph(graph.weight_dims)
        projection: Dict[Node, Node] = {}
        counter = 0
        for node in graph.weights:
            if node in projection:
                continue
            partner = matched.get(node)
            group = (node,) if partner is None or partner in projection else (
                node,
                partner,
            )
            coarse_id = ("m", counter)
            counter += 1
            weight = [0.0] * graph.weight_dims
            fixed_cluster: Optional[int] = None
            for member in group:
                projection[member] = coarse_id
                for d in range(graph.weight_dims):
                    weight[d] += graph.weights[member][d]
                if member in graph.fixed:
                    fixed_cluster = graph.fixed[member]
            coarse.add_node(coarse_id, weight)
            if fixed_cluster is not None:
                coarse.fix(coarse_id, fixed_cluster)
        order = graph.node_order()
        for u, nbrs in graph.adj.items():
            for v, w in nbrs.items():
                cu, cv = projection[u], projection[v]
                if cu != cv and order[u] < order[v]:
                    coarse.add_edge(cu, cv, w)
        return coarse, projection

    # -- initial partition ----------------------------------------------------------------

    def _initial_partition(
        self, graph: PartitionGraph, rng: random.Random
    ) -> Dict[Node, int]:
        totals = graph.total_weight()
        targets = [t / self.k for t in totals]
        loads = [[0.0] * graph.weight_dims for _ in range(self.k)]
        assignment: Dict[Node, int] = {}

        for node, cluster in graph.fixed.items():
            assignment[node] = cluster
            for d in range(graph.weight_dims):
                loads[cluster][d] += graph.weights[node][d]

        # Heaviest-first greedy: place each node where it minimises
        # (balance violation, then cut increase).
        order = sorted(
            (n for n in graph.weights if n not in assignment),
            key=lambda n: tuple(-w for w in graph.weights[n]),
        )
        for node in order:
            best_cluster = 0
            best_key = None
            for c in range(self.k):
                violation = 0.0
                for d in range(graph.weight_dims):
                    if targets[d] > 0:
                        new = loads[c][d] + graph.weights[node][d]
                        over = new - self.imbalance[d] * targets[d]
                        if over > 0:
                            violation += over / targets[d]
                external = sum(
                    w
                    for nbr, w in graph.adj[node].items()
                    if assignment.get(nbr, c) != c
                )
                load_frac = sum(
                    loads[c][d] / targets[d] if targets[d] > 0 else 0.0
                    for d in range(graph.weight_dims)
                )
                key = (violation, external, load_frac, rng.random())
                if best_key is None or key < best_key:
                    best_key = key
                    best_cluster = c
            assignment[node] = best_cluster
            for d in range(graph.weight_dims):
                loads[best_cluster][d] += graph.weights[node][d]
        return assignment

    # -- refinement -------------------------------------------------------------------------

    def _refine(
        self,
        graph: PartitionGraph,
        assignment: Dict[Node, int],
        rng: random.Random,
    ) -> Dict[Node, int]:
        totals = graph.total_weight()
        targets = [t / self.k for t in totals]
        max_node_w = [
            max((w[d] for w in graph.weights.values()), default=0.0)
            for d in range(graph.weight_dims)
        ]
        caps = [
            max(self.imbalance[d] * targets[d], max_node_w[d])
            if targets[d] > 0
            else float("inf")
            for d in range(graph.weight_dims)
        ]
        loads = [[0.0] * graph.weight_dims for _ in range(self.k)]
        for node, cluster in assignment.items():
            for d in range(graph.weight_dims):
                loads[cluster][d] += graph.weights[node][d]

        assignment = dict(assignment)
        for _ in range(self.refine_passes):
            if budget_expired(self.budget):
                break
            moved = False
            order = [n for n in graph.weights if n not in graph.fixed]
            rng.shuffle(order)
            for node in order:
                src = assignment[node]
                # Gain of moving to each other cluster.
                conn = [0.0] * self.k
                for nbr, w in graph.adj[node].items():
                    conn[assignment[nbr]] += w
                best_dst = None
                best_gain = 0.0
                for dst in range(self.k):
                    if dst == src:
                        continue
                    if not self._move_fits(graph, node, dst, loads, caps):
                        continue
                    gain = conn[dst] - conn[src]
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_dst = dst
                if best_dst is None and self._overloaded(src, loads, caps):
                    # Balance repair: allow a zero/negative-gain move out of
                    # an overloaded cluster into the lightest feasible one.
                    candidates = [
                        dst
                        for dst in range(self.k)
                        if dst != src
                        and self._move_fits(graph, node, dst, loads, caps)
                    ]
                    if candidates:
                        best_dst = min(
                            candidates, key=lambda c: sum(loads[c])
                        )
                if best_dst is not None:
                    self._apply_move(graph, node, src, best_dst, loads)
                    assignment[node] = best_dst
                    moved = True
            if not moved:
                break
        return assignment

    def _move_fits(self, graph, node, dst, loads, caps) -> bool:
        w = graph.weights[node]
        for d in range(graph.weight_dims):
            if caps[d] != float("inf") and loads[dst][d] + w[d] > caps[d] + 1e-9:
                return False
        return True

    def _overloaded(self, cluster, loads, caps) -> bool:
        return any(
            caps[d] != float("inf") and loads[cluster][d] > caps[d] + 1e-9
            for d in range(len(caps))
        )

    def _apply_move(self, graph, node, src, dst, loads) -> None:
        w = graph.weights[node]
        for d in range(graph.weight_dims):
            loads[src][d] -= w[d]
            loads[dst][d] += w[d]


def partition_balance(
    graph: PartitionGraph, assignment: Dict[Node, int], k: int
) -> List[Tuple[float, ...]]:
    """Per-cluster total weight vectors under an assignment."""
    loads = [[0.0] * graph.weight_dims for _ in range(k)]
    for node, cluster in assignment.items():
        for d in range(graph.weight_dims):
            loads[cluster][d] += graph.weights[node][d]
    return [tuple(l) for l in loads]
