"""Region-based Hierarchical Operation Partitioning (RHOP) — phase 2.

A reimplementation of the RHOP partitioner (Chu, Fan & Mahlke, PLDI 2003)
as described there and in Section 3.4 of the CGO 2006 paper, extended with
the memory-object locks the CGO paper adds: "we extended the RHOP method
to account for memory object locations in the schedule estimates.  When a
memory operation is considered for placement in an incorrect cluster, the
schedule length estimate would indicate an infeasible partitioning ...
Thus, all memory access operations will always be placed on their
assigned clusters."

Regions are basic blocks; blocks are processed in reverse postorder.
Per block the algorithm is the multilevel scheme of the RHOP paper:

1. **Slack-weighted coarsening** — dependence edges get weights inversely
   proportional to their slack ("A low slack between operations indicates
   that the edge is more critical"); operations are greedily grouped along
   heavy edges, one grouping per operation per stage.
2. **Initial assignment** of the coarsest groups by greedy schedule
   estimate.
3. **Uncoarsening with refinement** — at each level groups are moved
   across clusters when the schedule estimator says the move helps
   ("Uncoarsened groups of operations are considered for movement across
   partitions when they appear favorable in terms of reducing schedule
   length or resource saturation").

Cross-block consistency: the first placement of a virtual register's
defining operation fixes the register's *home*; later defs are locked to
it and uses from other blocks are modelled as anchors so the estimator
charges an intercluster move when they are consumed elsewhere.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.cfg import CFG
from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..ir import Function, Module, Operation
from ..machine import Machine
from ..resilience.budget import budget_expired
from ..schedule.depgraph import DependenceGraph
from .estimator import Anchor, INFEASIBLE, ScheduleEstimator
from .merges import UnionFind


class RHOPConfig:
    """Tunables for the computation partitioner.

    ``budget`` is a cooperative :class:`repro.resilience.Budget`: the
    restart, global-pass, and refinement loops poll it and, on expiry,
    return the best complete assignment found so far instead of running
    to completion (anytime behaviour).  Every block always receives an
    assignment — expiry only trims optional improvement work.
    """

    def __init__(
        self,
        refine_passes: int = 3,
        coarsen_to_per_cluster: int = 2,
        seed: int = 777,
        cut_tiebreak: bool = True,
        restarts: int = 2,
        global_passes: int = 2,
        budget=None,
    ):
        self.refine_passes = refine_passes
        self.coarsen_to_per_cluster = coarsen_to_per_cluster
        self.seed = seed
        self.cut_tiebreak = cut_tiebreak
        self.restarts = max(1, restarts)
        self.global_passes = max(1, global_passes)
        self.budget = budget

    def reseeded(self, offset: int, budget=None) -> "RHOPConfig":
        """A copy with the base seed bumped by ``offset`` (the resilient
        pipeline's retry knob); ``budget``, when given, replaces the
        copy's budget."""
        return RHOPConfig(
            refine_passes=self.refine_passes,
            coarsen_to_per_cluster=self.coarsen_to_per_cluster,
            seed=self.seed + offset,
            cut_tiebreak=self.cut_tiebreak,
            restarts=self.restarts,
            global_passes=self.global_passes,
            budget=budget if budget is not None else self.budget,
        )


class RHOPResult:
    """Cluster assignment for every operation plus register homes.

    ``phase`` names the computation partitioner that produced the result
    (``"rhop"`` or ``"bug"``) and ``lock_violations`` records memory locks
    the machine cannot actually honour as ``(func, op uid, cluster)``
    tuples — both consumed by the partition validity checker so findings
    are attributed to the phase that caused them.
    """

    def __init__(self, phase: str = "rhop"):
        self.assignment: Dict[int, int] = {}  # op uid -> cluster
        self.vreg_home: Dict[str, Dict[int, int]] = {}  # func -> vid -> cluster
        self.phase = phase
        self.lock_violations: List[Tuple[str, int, int]] = []

    def cluster_of(self, op: Operation) -> int:
        return self.assignment[op.uid]

    def homes_for(self, func_name: str) -> Dict[int, int]:
        return self.vreg_home.setdefault(func_name, {})


def record_infeasible_locks(
    machine: Machine,
    func: Function,
    mem_locks: Dict[int, int],
    result: RHOPResult,
) -> None:
    """Record every lock that forces an operation onto a cluster with no
    unit of its FU class.  Shared by RHOP and BUG — the one reporting path
    the validity checker reads (:func:`repro.lint.diagnose_lock_violations`).
    """
    for op in func.operations():
        cluster = mem_locks.get(op.uid)
        if cluster is None:
            continue
        cls = machine.fu_class_of(op)
        if cls is not None and machine.units(cluster, cls) == 0:
            result.lock_violations.append((func.name, op.uid, cluster))


class RHOP:
    """The region-level computation partitioner.

    ``block_freq(func, block)`` orders regions hottest-first so that hot
    loops choose the register homes and cold initialisation code adapts to
    them (not the other way round); without a profile the static
    loop-nesting estimate is used.
    """

    def __init__(
        self,
        machine: Machine,
        config: Optional[RHOPConfig] = None,
        block_freq: Optional[Callable[[str, str], float]] = None,
    ):
        self.machine = machine
        self.config = config or RHOPConfig()
        self.block_freq = block_freq

    # -- module / function driver ---------------------------------------------------

    def partition_module(
        self,
        module: Module,
        mem_locks: Optional[Dict[int, int]] = None,
    ) -> RHOPResult:
        """Partition every function.  ``mem_locks`` maps memory-operation
        uids to their required cluster (empty/None for unified memory)."""
        result = RHOPResult()
        for func in module:
            self.partition_function(func, result, mem_locks or {})
        return result

    def partition_function(
        self,
        func: Function,
        result: Optional[RHOPResult] = None,
        mem_locks: Optional[Dict[int, int]] = None,
    ) -> RHOPResult:
        result = result or RHOPResult()
        mem_locks = mem_locks or {}
        record_infeasible_locks(self.machine, func, mem_locks, result)
        homes = result.homes_for(func.name)
        cfg = CFG(func)
        rng = random.Random(self.config.seed)
        order = self._region_order(func, cfg)
        # Clusters of already-placed *uses* of values defined elsewhere:
        # vid -> cluster -> weighted use count.  Regions are visited
        # hottest-first, so producers placed later are pulled toward their
        # hot consumers through reverse anchors.  Subsequent global passes
        # revisit every region with complete placement knowledge, breaking
        # the first pass's greedy phase-ordering cascades.
        pending_uses: Dict[int, Dict[int, float]] = {}
        for gpass in range(self.config.global_passes):
            if gpass > 0:
                if budget_expired(self.config.budget):
                    break  # pass 0 placed every op; skip global repair
                pending_uses = self._full_use_map(func, result.assignment)
                homes.clear()
            for name in order:
                block = func.blocks[name]
                if block.ops:
                    self._partition_block(
                        func, block, homes, mem_locks, result, rng, pending_uses
                    )
        return result

    def _full_use_map(self, func, assignment) -> Dict[int, Dict[int, float]]:
        """vid -> cluster -> use count over the whole placed function."""
        uses: Dict[int, Dict[int, float]] = {}
        for block in func:
            defined: Set[int] = set()
            for op in block.ops:
                for src in op.register_srcs():
                    if src.vid not in defined and op.uid in assignment:
                        per = uses.setdefault(src.vid, {})
                        c = assignment[op.uid]
                        per[c] = per.get(c, 0.0) + 1.0
                if op.dest is not None:
                    defined.add(op.dest.vid)
        return uses

    def _region_order(self, func: Function, cfg: CFG) -> List[str]:
        """Regions hottest-first (ties broken by reverse postorder)."""
        rpo = cfg.reverse_postorder()
        if self.block_freq is not None:
            freq = {name: self.block_freq(func.name, name) for name in rpo}
        else:
            loops = LoopInfo(cfg, DominatorTree(cfg))
            freq = {name: loops.static_frequency(name) for name in rpo}
        index = {name: i for i, name in enumerate(rpo)}
        return sorted(rpo, key=lambda n: (-freq[n], index[n]))

    # -- per-block multilevel partitioning -----------------------------------------------

    def _partition_block(
        self, func, block, homes, mem_locks, result, rng, pending_uses=None
    ) -> None:
        k = self.machine.num_clusters
        graph = DependenceGraph(block, self.machine.latency_of)
        uids = [op.uid for op in graph.ops]
        pending_uses = pending_uses if pending_uses is not None else {}

        if k == 1:
            for uid in uids:
                result.assignment[uid] = 0
            self._record_homes(func, block, homes, result)
            return

        locks = self._block_locks(block, homes, mem_locks)
        anchors = self._block_anchors(func, block, homes)
        anchors.extend(self._reverse_anchors(block, homes, pending_uses))
        estimator = ScheduleEstimator(graph, self.machine, anchors)

        base_groups = self._mandatory_groups(block, locks)

        # Multi-start V-cycles: the estimate surface is full of plateaus,
        # so keep the best of a few randomised coarsen/place/refine runs.
        best_cluster_of: Dict[int, int] = {}
        best_key = None
        for attempt in range(self.config.restarts):
            if attempt > 0 and budget_expired(self.config.budget):
                break  # anytime: keep the best completed cycle
            attempt_rng = random.Random(rng.randrange(1 << 30) + attempt)
            cluster_of = self._one_block_cycle(
                graph, base_groups, locks, estimator, uids, attempt_rng
            )
            key = (
                estimator.estimate(cluster_of, exposed=True),
                estimator.move_count(cluster_of),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_cluster_of = cluster_of

        for uid in uids:
            result.assignment[uid] = best_cluster_of[uid]
        self._record_homes(func, block, homes, result)
        self._record_pending_uses(block, best_cluster_of, pending_uses)

    def _one_block_cycle(
        self, graph, base_groups, locks, estimator, uids, rng
    ) -> Dict[int, int]:
        levels = self._coarsen(graph, base_groups, locks, rng)

        # Initial assignment on the coarsest level.
        coarsest = levels[-1]
        cluster_of: Dict[int, int] = {}
        order = sorted(coarsest, key=lambda g: -len(coarsest[g]))
        # Locked groups first so free groups see their pressure.
        order.sort(
            key=lambda g: 0 if self._group_lock(coarsest[g], locks) is not None else 1
        )
        for gid in order:
            members = coarsest[gid]
            lock = self._group_lock(members, locks)
            if lock is not None:
                choice = lock
            else:
                choice = self._best_cluster_for(
                    members, cluster_of, estimator, uids, rng
                )
            for uid in members:
                cluster_of[uid] = choice

        # Uncoarsen with refinement at every level.  The initial
        # assignment above already covers every op, so on budget expiry
        # the remaining refinement levels can be skipped wholesale.
        for level_groups in reversed(levels):
            if budget_expired(self.config.budget):
                break
            self._refine_level(level_groups, cluster_of, locks, estimator, rng)
        return cluster_of

    # -- locks, anchors, mandatory merges ------------------------------------------------

    def _block_locks(self, block, homes, mem_locks) -> Dict[int, int]:
        """Op uid -> forced cluster.  Memory locks dominate register homes."""
        locks: Dict[int, int] = {}
        for op in block.ops:
            if op.dest is not None and op.dest.vid in homes:
                locks[op.uid] = homes[op.dest.vid]
        for op in block.ops:
            if op.uid in mem_locks:
                locks[op.uid] = mem_locks[op.uid]
        return locks

    def _block_anchors(self, func, block, homes) -> List[Anchor]:
        """Anchors for values flowing into the block from placed code."""
        defined: Set[int] = set()
        external_uses: Dict[int, Set[int]] = {}
        for op in block.ops:
            for src in op.register_srcs():
                if src.vid not in defined:
                    external_uses.setdefault(src.vid, set()).add(op.uid)
            if op.dest is not None:
                defined.add(op.dest.vid)
        anchors = []
        for vid, uses in external_uses.items():
            if vid in homes:
                anchors.append(Anchor(("vreg", vid), homes[vid], uses))
        return anchors

    def _reverse_anchors(self, block, homes, pending_uses) -> List[Anchor]:
        """Anchors pulling a value's defining ops toward the cluster where
        its already-placed consumers (in hotter regions) live."""
        anchors: List[Anchor] = []
        for op in block.ops:
            if op.dest is None:
                continue
            vid = op.dest.vid
            if vid in homes:
                continue  # defs already locked to the home
            per_cluster = pending_uses.get(vid)
            if not per_cluster:
                continue
            best = max(sorted(per_cluster), key=lambda c: per_cluster[c])
            anchors.append(Anchor(("ruse", vid, op.uid), best, {op.uid}))
        return anchors

    def _record_pending_uses(self, block, cluster_of, pending_uses) -> None:
        """Register the placement of uses whose defining ops live in
        not-yet-partitioned regions."""
        defined: Set[int] = set()
        for op in block.ops:
            for src in op.register_srcs():
                if src.vid not in defined:
                    per = pending_uses.setdefault(src.vid, {})
                    c = cluster_of[op.uid]
                    per[c] = per.get(c, 0.0) + 1.0
            if op.dest is not None:
                defined.add(op.dest.vid)

    def _mandatory_groups(self, block, locks) -> Dict[int, Set[int]]:
        """Initial groups: defs of one register co-locate (move insertion
        then gives each register one primary home cluster)."""
        uf = UnionFind()
        rep_of_vreg: Dict[int, int] = {}
        for op in block.ops:
            uf.find(op.uid)
            if op.dest is not None:
                vid = op.dest.vid
                if vid in rep_of_vreg:
                    a, b = rep_of_vreg[vid], op.uid
                    # Never merge ops locked to different clusters.
                    if not self._lock_conflict(uf, locks, a, b):
                        uf.union(a, b)
                else:
                    rep_of_vreg[vid] = op.uid
        groups: Dict[int, Set[int]] = {}
        gid_of_root: Dict[int, int] = {}
        for op in block.ops:
            root = uf.find(op.uid)
            if root not in gid_of_root:
                gid_of_root[root] = len(gid_of_root)
            groups.setdefault(gid_of_root[root], set()).add(op.uid)
        return groups

    @staticmethod
    def _lock_conflict(uf, locks, a, b) -> bool:
        la = RHOP._set_lock(uf, locks, a)
        lb = RHOP._set_lock(uf, locks, b)
        return la is not None and lb is not None and la != lb

    @staticmethod
    def _set_lock(uf, locks, member) -> Optional[int]:
        # A group's lock is the lock of any member (consistent by invariant).
        root = uf.find(member)
        for uid, cluster in locks.items():
            if uf.find(uid) == root:
                return cluster
        return None

    def _group_lock(self, members: Set[int], locks: Dict[int, int]) -> Optional[int]:
        for uid in members:
            if uid in locks:
                return locks[uid]
        return None

    # -- coarsening ----------------------------------------------------------------------

    def _coarsen(
        self,
        graph: DependenceGraph,
        base_groups: Dict[int, Set[int]],
        locks: Dict[int, int],
        rng: random.Random,
    ) -> List[Dict[int, Set[int]]]:
        """Multilevel coarsening; returns [finest, ..., coarsest] levels."""
        k = self.machine.num_clusters
        target = max(self.config.coarsen_to_per_cluster * k, 4)

        max_slack = 0
        for edge in graph.flow_edges():
            max_slack = max(max_slack, graph.slack(edge))

        # Group-level adjacency from slack-weighted flow edges.
        group_of: Dict[int, int] = {}
        for gid, members in base_groups.items():
            for uid in members:
                group_of[uid] = gid
        adj: Dict[Tuple[int, int], float] = {}
        for edge in graph.flow_edges():
            gs, gd = group_of[edge.src], group_of[edge.dst]
            if gs == gd:
                continue
            weight = max_slack - graph.slack(edge) + 1
            key = (min(gs, gd), max(gs, gd))
            adj[key] = adj.get(key, 0.0) + weight

        levels = [dict(base_groups)]
        groups = dict(base_groups)
        while len(groups) > target:
            matched: Set[int] = set()
            merges: List[Tuple[int, int]] = []
            for (a, b), _w in sorted(
                adj.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                if a in matched or b in matched:
                    continue
                la = self._group_lock(groups[a], locks)
                lb = self._group_lock(groups[b], locks)
                if la is not None and lb is not None and la != lb:
                    continue
                matched.add(a)
                matched.add(b)
                merges.append((a, b))
            if not merges:
                break
            new_groups: Dict[int, Set[int]] = {}
            remap: Dict[int, int] = {}
            next_gid = 0
            for a, b in merges:
                new_groups[next_gid] = groups[a] | groups[b]
                remap[a] = remap[b] = next_gid
                next_gid += 1
            for gid, members in groups.items():
                if gid not in remap:
                    new_groups[next_gid] = members
                    remap[gid] = next_gid
                    next_gid += 1
            new_adj: Dict[Tuple[int, int], float] = {}
            for (a, b), w in adj.items():
                na, nb = remap[a], remap[b]
                if na != nb:
                    key = (min(na, nb), max(na, nb))
                    new_adj[key] = new_adj.get(key, 0.0) + w
            groups, adj = new_groups, new_adj
            levels.append(dict(groups))
        return levels

    # -- initial placement and refinement ---------------------------------------------------

    def _best_cluster_for(
        self,
        members: Set[int],
        cluster_of: Dict[int, int],
        estimator: ScheduleEstimator,
        all_uids: List[int],
        rng: random.Random,
    ) -> int:
        """Greedy initial choice: the cluster minimising the (partial)
        schedule estimate over the groups placed so far."""
        k = self.machine.num_clusters
        trial = dict(cluster_of)
        best, best_key = 0, None
        order = list(range(k))
        rng.shuffle(order)
        for c in order:
            for uid in members:
                trial[uid] = c
            # Estimate first; break plateau ties by communication (cut +
            # anchor moves) so placement follows affinity, not cluster ids.
            key = (estimator.estimate(trial), estimator.move_count(trial))
            if best_key is None or key < best_key:
                best, best_key = c, key
        return best

    def _refine_level(
        self,
        level_groups: Dict[int, Set[int]],
        cluster_of: Dict[int, int],
        locks: Dict[int, int],
        estimator: ScheduleEstimator,
        rng: random.Random,
    ) -> None:
        k = self.machine.num_clusters
        movable = [
            gid
            for gid, members in level_groups.items()
            if self._group_lock(members, locks) is None
        ]
        for _ in range(self.config.refine_passes):
            if budget_expired(self.config.budget):
                break
            current = estimator.estimate(cluster_of)
            current_moves = estimator.move_count(cluster_of)
            improved = False
            rng.shuffle(movable)
            for gid in movable:
                if budget_expired(self.config.budget):
                    break  # estimator calls dominate; stop mid-pass too
                members = level_groups[gid]
                src = cluster_of[next(iter(members))]
                best_dst, best_key = None, (current, current_moves)
                for dst in range(k):
                    if dst == src:
                        continue
                    for uid in members:
                        cluster_of[uid] = dst
                    est = estimator.estimate(cluster_of)
                    moves = (
                        estimator.move_count(cluster_of)
                        if self.config.cut_tiebreak
                        else 0
                    )
                    key = (est, moves)
                    if key < best_key:
                        best_key = key
                        best_dst = dst
                    for uid in members:
                        cluster_of[uid] = src
                if best_dst is not None:
                    for uid in members:
                        cluster_of[uid] = best_dst
                    current, current_moves = best_key
                    improved = True
            if not improved:
                break

    # -- home bookkeeping ---------------------------------------------------------------------

    def _record_homes(self, func, block, homes, result) -> None:
        """First definition placed fixes a register's home cluster; a
        parameter's home is the cluster of its first placed use."""
        for op in block.ops:
            if op.dest is not None and op.dest.vid not in homes:
                homes[op.dest.vid] = result.assignment[op.uid]
        param_vids = {p.vid for p in func.params}
        for op in block.ops:
            for src in op.register_srcs():
                if src.vid in param_vids and src.vid not in homes:
                    homes[src.vid] = result.assignment[op.uid]
