"""Global Data Partitioning — phase 1 of the paper's algorithm.

Builds the program-level DFG, applies the access-pattern merges, and runs
the multilevel graph partitioner with data-size node weights to choose a
home cluster for every data object (Section 3.3.2): "METIS tries to divide
the nodes into separate partitions by minimizing the number of edges cut
while also trying to balance the node weights. ... Node weights are added
to each operation which indicate the size of the data (if any) accessed
within that node."
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..analysis.dfg import ProgramGraph
from ..analysis.objects import ObjectTable
from ..ir import Module
from .merges import MergeResult, access_pattern_merge
from .multilevel import MultilevelPartitioner, PartitionGraph


class GDPConfig:
    """Tunables for the data-partitioning pass.

    ``size_imbalance`` is the METIS-style balance knob on data bytes
    (Section 4.3: better-performing but less balanced mappings "can be
    achieved by allowing for more imbalance of the resulting partition").
    ``use_op_weight`` adds the operation count as a second balance
    constraint (METIS multi-weight mode) with tolerance ``op_imbalance``.
    ``budget`` is a cooperative :class:`repro.resilience.Budget` polled by
    the multilevel partitioner's restart/refinement loops; on expiry the
    best partition found so far is returned (anytime behaviour).
    """

    def __init__(
        self,
        size_imbalance: float = 1.20,
        use_op_weight: bool = False,
        op_imbalance: float = 2.0,
        seed: int = 12345,
        budget=None,
    ):
        self.size_imbalance = size_imbalance
        self.use_op_weight = use_op_weight
        self.op_imbalance = op_imbalance
        self.seed = seed
        self.budget = budget

    def reseeded(self, offset: int, budget=None) -> "GDPConfig":
        """A copy with the base seed bumped by ``offset`` — the retry
        knob the resilient pipeline drives (the multilevel partitioner
        already derives each restart's rng from ``seed + attempt``).
        ``budget``, when given, replaces the copy's budget."""
        return GDPConfig(
            size_imbalance=self.size_imbalance,
            use_op_weight=self.use_op_weight,
            op_imbalance=self.op_imbalance,
            seed=self.seed + offset,
            budget=budget if budget is not None else self.budget,
        )


class DataPartition:
    """Phase-1 result: a home cluster per data object."""

    def __init__(
        self,
        object_home: Dict[str, int],
        merge: MergeResult,
        group_cluster: Dict[int, int],
        num_clusters: int,
    ):
        self.object_home = object_home
        self.merge = merge
        self.group_cluster = group_cluster
        self.num_clusters = num_clusters

    def home_of(self, obj_id: str) -> int:
        return self.object_home[obj_id]

    def cluster_bytes(self, objects: ObjectTable):
        """Total data bytes homed on each cluster."""
        totals = [0] * self.num_clusters
        for obj_id, cluster in self.object_home.items():
            if obj_id in objects:
                totals[cluster] += objects[obj_id].size
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<data partition: {len(self.object_home)} objects>"


def build_group_graph(
    graph: ProgramGraph,
    objects: ObjectTable,
    merge: MergeResult,
    use_op_weight: bool,
) -> PartitionGraph:
    """The coarsened program graph handed to the graph partitioner."""
    dims = 2 if use_op_weight else 1
    pgraph = PartitionGraph(weight_dims=dims)
    for gid, group in merge.groups.items():
        bytes_weight = float(objects.size_of(group.object_ids))
        weight = (
            (bytes_weight, float(len(group.op_uids)))
            if use_op_weight
            else (bytes_weight,)
        )
        pgraph.add_node(gid, weight)
    for (src, dst), weight in graph.undirected_edges().items():
        gs = merge.group_of_op[src]
        gd = merge.group_of_op[dst]
        if gs != gd:
            pgraph.add_edge(gs, gd, weight)
    return pgraph


def gdp_partition(
    module: Module,
    objects: ObjectTable,
    num_clusters: int,
    block_freq: Optional[Callable[[str, str], float]] = None,
    config: Optional[GDPConfig] = None,
    merge: Optional[MergeResult] = None,
    program_graph: Optional[ProgramGraph] = None,
) -> DataPartition:
    """Run phase 1: choose a home cluster for every data object.

    ``block_freq`` supplies profiled block frequencies; without it the
    static loop-nesting estimate is used.  A precomputed ``merge`` and/or
    ``program_graph`` may be passed to share work between schemes.
    """
    config = config or GDPConfig()
    graph = program_graph or ProgramGraph(module, block_freq)
    merge = merge or access_pattern_merge(graph, objects)
    pgraph = build_group_graph(graph, objects, merge, config.use_op_weight)

    imbalance = (
        (config.size_imbalance, config.op_imbalance)
        if config.use_op_weight
        else (config.size_imbalance,)
    )
    partitioner = MultilevelPartitioner(
        k=num_clusters, imbalance=imbalance, seed=config.seed,
        budget=config.budget,
    )
    group_cluster = partitioner.partition(pgraph)

    object_home = {
        obj_id: group_cluster[gid]
        for obj_id, gid in merge.group_of_object.items()
    }
    return DataPartition(object_home, merge, group_cluster, num_clusters)
