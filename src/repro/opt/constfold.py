"""Constant folding and algebraic simplification.

Folds operations whose sources are all constants, and simplifies the
common algebraic identities lowering tends to emit (``x + 0``, ``x * 1``,
``x * 0``, shifts by zero, selects on constant conditions).  Constants
are propagated through registers within each block (the environment resets
at block boundaries — sound without SSA).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import Constant, Function, Module, Opcode, Operation, VirtualRegister
from ..ir.types import FLOAT, INT
from ..profiler.interp import _HANDLERS


def fold_constants(func: Function) -> int:
    """Fold/simplify in place; returns the number of rewrites."""
    changed = 0
    for block in func:
        consts: Dict[int, Constant] = {}
        for op in block.ops:
            for i, src in enumerate(list(op.srcs)):
                if isinstance(src, VirtualRegister) and src.vid in consts:
                    op.srcs[i] = consts[src.vid]
                    changed += 1
            folded = _fold_op(op)
            if folded is not None:
                op.opcode = Opcode.MOV
                op.srcs = [folded]
                changed += 1
            elif _simplify(op):
                changed += 1
            if op.dest is not None:
                if op.opcode is Opcode.MOV and isinstance(op.srcs[0], Constant):
                    consts[op.dest.vid] = op.srcs[0]
                else:
                    consts.pop(op.dest.vid, None)
    return changed


#: Opcodes safe to evaluate at compile time with the interpreter handlers.
_FOLDABLE = set(_HANDLERS) - {Opcode.PTRADD, Opcode.SELECT}


def _fold_op(op: Operation) -> Optional[Constant]:
    """A constant replacing the op's result, or None."""
    if op.dest is None or op.opcode not in _FOLDABLE:
        return None
    if not all(isinstance(s, Constant) for s in op.srcs):
        return None
    if op.opcode in (Opcode.DIV, Opcode.REM) and op.srcs[1].value == 0:
        return None  # keep the faulting op
    if op.opcode is Opcode.FDIV and op.srcs[1].value == 0.0:
        return None
    value = _HANDLERS[op.opcode](*[s.value for s in op.srcs])
    if op.dest.ty.is_float():
        return Constant(float(value), FLOAT)
    return Constant(value, FLOAT if isinstance(value, float) else INT)


def _simplify(op: Operation) -> bool:
    """Algebraic identities; returns True if the op was rewritten."""
    oc = op.opcode
    if op.dest is None:
        return False

    def to_mov(src) -> bool:
        op.opcode = Opcode.MOV
        op.srcs = [src]
        return True

    if oc is Opcode.SELECT and isinstance(op.srcs[0], Constant):
        return to_mov(op.srcs[1] if op.srcs[0].value != 0 else op.srcs[2])
    if oc in (Opcode.ADD, Opcode.SUB, Opcode.SHL, Opcode.SHR, Opcode.OR,
              Opcode.XOR):
        if isinstance(op.srcs[1], Constant) and op.srcs[1].value == 0:
            return to_mov(op.srcs[0])
    if oc is Opcode.ADD and isinstance(op.srcs[0], Constant) and op.srcs[0].value == 0:
        return to_mov(op.srcs[1])
    if oc is Opcode.MUL:
        for i in (0, 1):
            if isinstance(op.srcs[i], Constant):
                if op.srcs[i].value == 1:
                    return to_mov(op.srcs[1 - i])
                if op.srcs[i].value == 0:
                    return to_mov(Constant(0, INT))
    if (
        oc is Opcode.PTRADD
        and isinstance(op.srcs[1], Constant)
        and op.srcs[1].value == 0
    ):
        return to_mov(op.srcs[0])
    return False


def fold_module(module: Module) -> int:
    """Fold every function; returns total rewrites."""
    return sum(fold_constants(func) for func in module)
