"""Copy propagation, local CSE, and dead-code elimination.

These are the classic cleanups a Trimaran-class compiler runs before
scheduling; lowering emits redundant copies (default initialisations
followed by real ones) and duplicated address arithmetic (``a[i]`` used
twice computes ``i*4`` twice) that would otherwise inflate every schedule.

All three passes are intra-block for values (sound without SSA) with a
global liveness-based DCE on top.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import CFG
from ..analysis.liveness import Liveness
from ..ir import Constant, Function, GlobalAddress, Module, Opcode, Operation, VirtualRegister


def propagate_copies(func: Function) -> int:
    """Within each block, replace uses of ``y`` after ``y = MOV x`` with
    ``x`` while neither register is redefined."""
    changed = 0
    for block in func:
        copy_of: Dict[int, VirtualRegister] = {}
        for op in block.ops:
            for i, src in enumerate(list(op.srcs)):
                if isinstance(src, VirtualRegister) and src.vid in copy_of:
                    op.srcs[i] = copy_of[src.vid]
                    changed += 1
            if op.dest is None:
                continue
            # Any redefinition invalidates copies of/through the register.
            dead = [
                vid
                for vid, source in copy_of.items()
                if vid == op.dest.vid or source.vid == op.dest.vid
            ]
            for vid in dead:
                del copy_of[vid]
            if (
                op.opcode is Opcode.MOV
                and isinstance(op.srcs[0], VirtualRegister)
                and op.srcs[0].vid != op.dest.vid
            ):
                copy_of[op.dest.vid] = op.srcs[0]
    return changed


#: Pure opcodes eligible for common-subexpression elimination.
_CSE_OPCODES = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.NOT, Opcode.NEG, Opcode.SHL, Opcode.SHR, Opcode.PTRADD,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPGT,
    Opcode.CMPGE, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FNEG,
    Opcode.ITOF, Opcode.FTOI, Opcode.SELECT,
}


def _value_key(v, versions: Dict[int, int]):
    if isinstance(v, VirtualRegister):
        return ("r", v.vid, versions.get(v.vid, 0))
    if isinstance(v, Constant):
        return ("c", v.value, str(v.ty))
    if isinstance(v, GlobalAddress):
        return ("g", v.symbol)
    return ("?", id(v))


def eliminate_common_subexpressions(func: Function) -> int:
    """Local (per-block) CSE over pure operations: a repeated computation
    with identical (version-aware) sources becomes a MOV of the first
    result, provided the first result register is not redefined between
    the two sites."""
    changed = 0
    for block in func:
        versions: Dict[int, int] = {}
        available: Dict[Tuple, VirtualRegister] = {}
        for op in block.ops:
            key: Optional[Tuple] = None
            if op.opcode in _CSE_OPCODES and op.dest is not None:
                key = (
                    op.opcode.name,
                    tuple(_value_key(s, versions) for s in op.srcs),
                )
                prior = available.get(key)
                if prior is not None:
                    op.opcode = Opcode.MOV
                    op.srcs = [prior]
                    changed += 1
                    key = None  # the MOV result aliases prior; don't record
            if op.dest is not None:
                vid = op.dest.vid
                versions[vid] = versions.get(vid, 0) + 1
                # Invalidate expressions whose result register was clobbered.
                available = {
                    k: reg for k, reg in available.items() if reg.vid != vid
                }
                if key is not None:
                    available[key] = op.dest
    return changed


#: Opcodes with side effects: never removable even if the result is dead.
_SIDE_EFFECTS = {
    Opcode.STORE, Opcode.CALL, Opcode.BR, Opcode.CBR, Opcode.RET,
    Opcode.MALLOC, Opcode.LOAD, Opcode.DIV, Opcode.REM, Opcode.FDIV,
    Opcode.ICMOVE,
}
# LOAD/DIV/REM/FDIV can fault in this model (unmapped address, divide by
# zero), MALLOC changes the heap profile, ICMOVE is placement-relevant —
# keep them all.


def eliminate_dead_code(func: Function) -> int:
    """Remove pure operations whose results are never used (liveness-based,
    iterated to a fixed point)."""
    removed_total = 0
    while True:
        cfg = CFG(func)
        live = Liveness(func, cfg)
        removed = 0
        for block in func:
            live_now: Set[int] = set(live.live_out_of(block.name))
            keep: List[Operation] = []
            for op in reversed(block.ops):
                is_dead = (
                    op.dest is not None
                    and op.dest.vid not in live_now
                    and op.opcode not in _SIDE_EFFECTS
                )
                if is_dead:
                    removed += 1
                    continue
                keep.append(op)
                if op.dest is not None:
                    live_now.discard(op.dest.vid)
                for src in op.register_srcs():
                    live_now.add(src.vid)
            keep.reverse()
            block.ops = keep
        removed_total += removed
        if removed == 0:
            return removed_total


def optimize_function(func: Function, max_iterations: int = 4) -> int:
    """Run fold -> copy-prop -> CSE -> DCE to a fixed point."""
    from .constfold import fold_constants

    total = 0
    for _ in range(max_iterations):
        changed = fold_constants(func)
        changed += propagate_copies(func)
        changed += eliminate_common_subexpressions(func)
        changed += eliminate_dead_code(func)
        total += changed
        if changed == 0:
            break
    return total


def optimize_module(module: Module, max_iterations: int = 4) -> int:
    """Optimize every function; returns total rewrites+removals."""
    return sum(optimize_function(f, max_iterations) for f in module)
