"""Classic scalar optimizations run before partitioning/scheduling:
constant folding, copy propagation, local CSE, and dead-code elimination."""

from .cleanup import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize_function,
    optimize_module,
    propagate_copies,
)
from .constfold import fold_constants, fold_module

__all__ = [
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "optimize_function",
    "optimize_module",
    "propagate_copies",
    "fold_constants",
    "fold_module",
]
