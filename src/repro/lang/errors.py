"""Diagnostics for the MiniC frontend."""

from __future__ import annotations


class SourceLocation:
    """A (line, column) position within a MiniC source string."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int):
        self.line = line
        self.col = col

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceLocation({self.line}, {self.col})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and other.line == self.line
            and other.col == self.col
        )

    def __hash__(self) -> int:
        return hash((self.line, self.col))


class MiniCError(Exception):
    """Base for all frontend diagnostics."""

    def __init__(self, message: str, loc: SourceLocation = None):
        self.message = message
        self.loc = loc
        where = f" at {loc}" if loc else ""
        super().__init__(f"{message}{where}")


class LexError(MiniCError):
    """Invalid character sequence in the source text."""


class ParseError(MiniCError):
    """Source text does not conform to the MiniC grammar."""


class TypeCheckError(MiniCError):
    """Source text is grammatical but ill-typed or ill-formed."""
