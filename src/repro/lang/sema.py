"""Semantic analysis (symbol resolution + type checking) for MiniC.

The checker resolves identifiers to symbols, computes an IR type for every
expression (stored on ``expr.ty``), folds ``sizeof``, assigns allocation-site
ids to ``malloc`` expressions, and rejects ill-formed programs with
:class:`~repro.lang.errors.TypeCheckError`.

MiniC restrictions enforced here (deliberate, documented in DESIGN.md):

* locals are scalars or pointers only — arrays and structs live in global
  storage or on the heap, matching the paper's data-object model;
* address-of applies to memory lvalues (globals, fields, elements), never
  to register-resident locals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir.types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    IRType,
    PointerType,
    StructType,
)
from . import ast
from .errors import TypeCheckError

#: Intrinsic functions available without definition.
INTRINSICS: Dict[str, Tuple[IRType, List[IRType]]] = {
    "print_int": (VOID, [INT]),
    "print_float": (VOID, [FLOAT]),
}


class Symbol:
    """A named entity: global variable, local, parameter, or function."""

    def __init__(self, name: str, ty: IRType, kind: str):
        self.name = name
        self.ty = ty
        self.kind = kind  # "global" | "local" | "param" | "func"

    def is_memory_resident(self) -> bool:
        return self.kind == "global"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name}: {self.ty}>"


class FunctionSymbol(Symbol):
    def __init__(self, name: str, return_type: IRType, param_types: List[IRType]):
        super().__init__(name, return_type, "func")
        self.return_type = return_type
        self.param_types = param_types


class Scope:
    """A lexical scope chain for local symbol lookup."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, sym: Symbol, loc) -> None:
        if sym.name in self.symbols:
            raise TypeCheckError(f"redeclaration of {sym.name!r}", loc)
        self.symbols[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class Checker:
    """Type checker; call :meth:`check` once per program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.structs: Dict[str, StructType] = {}
        self.globals: Dict[str, Symbol] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self._current_fn: Optional[FunctionSymbol] = None
        self._current_fn_name = ""
        self._loop_depth = 0
        self._malloc_counter = 0

    # -- type resolution --------------------------------------------------------

    def resolve_type(self, spec: ast.TypeSpec) -> IRType:
        if isinstance(spec.base, tuple):
            name = spec.base[1]
            if name not in self.structs:
                raise TypeCheckError(f"unknown struct {name!r}", spec.loc)
            base: IRType = self.structs[name]
        elif spec.base == "int":
            base = INT
        elif spec.base == "float":
            base = FLOAT
        elif spec.base == "void":
            base = VOID
        else:  # pragma: no cover - parser guarantees base values
            raise TypeCheckError(f"unknown type {spec.base!r}", spec.loc)
        for _ in range(spec.pointer_depth):
            base = PointerType(base)
        return base

    # -- program ------------------------------------------------------------------

    def check(self) -> "Checker":
        for sdecl in self.program.structs:
            if sdecl.name in self.structs:
                raise TypeCheckError(f"duplicate struct {sdecl.name!r}", sdecl.loc)
            # Two-phase: allow pointer-to-self fields by pre-registering.
            fields: List[Tuple[str, IRType]] = []
            self.structs[sdecl.name] = StructType(sdecl.name, [])
            for fspec, fname in sdecl.fields:
                fields.append((fname, self.resolve_type(fspec)))
            self.structs[sdecl.name] = StructType(sdecl.name, fields)

        for gdecl in self.program.globals:
            self._check_global(gdecl)

        for fdecl in self.program.functions:
            if fdecl.name in self.functions or fdecl.name in INTRINSICS:
                raise TypeCheckError(f"duplicate function {fdecl.name!r}", fdecl.loc)
            ret = self.resolve_type(fdecl.return_spec)
            param_types = [self.resolve_type(p.type_spec) for p in fdecl.params]
            for p, pty in zip(fdecl.params, param_types):
                if isinstance(pty, (ArrayType, StructType)):
                    raise TypeCheckError(
                        f"parameter {p.name!r} must be scalar or pointer", p.loc
                    )
            self.functions[fdecl.name] = FunctionSymbol(fdecl.name, ret, param_types)

        for fdecl in self.program.functions:
            self._check_function(fdecl)
        return self

    def _check_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.globals:
            raise TypeCheckError(f"duplicate global {decl.name!r}", decl.loc)
        base = self.resolve_type(decl.type_spec)
        if base == VOID:
            raise TypeCheckError("global cannot have void type", decl.loc)
        ty: IRType = base
        if decl.array_size is not None:
            if isinstance(base, StructType):
                raise TypeCheckError("arrays of structs are not supported", decl.loc)
            ty = ArrayType(base, decl.array_size)
        if decl.init is not None:
            if isinstance(decl.init, list):
                if not isinstance(ty, ArrayType):
                    raise TypeCheckError(
                        "initializer list requires an array type", decl.loc
                    )
                if len(decl.init) > ty.count:
                    raise TypeCheckError(
                        f"too many initializers for {decl.name!r}", decl.loc
                    )
            elif isinstance(ty, (ArrayType, StructType)):
                raise TypeCheckError(
                    "scalar initializer on aggregate global", decl.loc
                )
        self.globals[decl.name] = Symbol(decl.name, ty, "global")

    # -- functions ---------------------------------------------------------------------

    def _check_function(self, decl: ast.FuncDecl) -> None:
        fsym = self.functions[decl.name]
        self._current_fn = fsym
        self._current_fn_name = decl.name
        scope = Scope()
        for p, pty in zip(decl.params, fsym.param_types):
            sym = Symbol(p.name, pty, "param")
            scope.declare(sym, p.loc)
        self._check_block(decl.body, Scope(scope))
        self._current_fn = None

    def _check_block(self, block: ast.Block, scope: Scope) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, Scope(scope))
        elif isinstance(stmt, ast.VarDecl):
            ty = self.resolve_type(stmt.type_spec)
            if isinstance(ty, (ArrayType, StructType)) or ty == VOID:
                raise TypeCheckError(
                    "locals must be int, float, or pointer "
                    "(use globals or malloc for aggregates)",
                    stmt.loc,
                )
            if stmt.init is not None:
                init_ty = self._check_expr(stmt.init, scope, expected=ty)
                self._require_assignable(ty, init_ty, stmt.loc)
            sym = Symbol(stmt.name, ty, "local")
            scope.declare(sym, stmt.loc)
            stmt.binding = sym
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then, Scope(scope))
            if stmt.orelse is not None:
                self._check_stmt(stmt.orelse, Scope(scope))
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(scope))
            self._loop_depth -= 1
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(inner))
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current_fn is not None
            want = self._current_fn.return_type
            if stmt.value is None:
                if want != VOID:
                    raise TypeCheckError("missing return value", stmt.loc)
            else:
                if want == VOID:
                    raise TypeCheckError("void function returns a value", stmt.loc)
                got = self._check_expr(stmt.value, scope, expected=want)
                self._require_assignable(want, got, stmt.loc)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise TypeCheckError("break/continue outside of a loop", stmt.loc)
        else:  # pragma: no cover - parser produces only the above
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.loc)

    def _check_condition(self, expr: ast.Expr, scope: Scope) -> None:
        ty = self._check_expr(expr, scope)
        if not (ty.is_integer() or ty.is_float() or ty.is_pointer()):
            raise TypeCheckError(f"condition has non-scalar type {ty}", expr.loc)

    # -- expressions ----------------------------------------------------------------------

    def _check_expr(
        self, expr: ast.Expr, scope: Scope, expected: Optional[IRType] = None
    ) -> IRType:
        ty = self._expr_type(expr, scope, expected)
        expr.ty = ty
        return ty

    def _expr_type(
        self, expr: ast.Expr, scope: Scope, expected: Optional[IRType]
    ) -> IRType:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.SizeOf):
            expr.value = self.resolve_type(expr.type_spec).size()
            return INT
        if isinstance(expr, ast.Ident):
            sym = scope.lookup(expr.name) or self.globals.get(expr.name)
            if sym is None:
                raise TypeCheckError(f"undefined variable {expr.name!r}", expr.loc)
            expr.binding = sym
            if isinstance(sym.ty, ArrayType):
                return PointerType(sym.ty.element)  # array decays to pointer
            return sym.ty
        if isinstance(expr, ast.Malloc):
            size_ty = self._check_expr(expr.size, scope)
            if not size_ty.is_integer():
                raise TypeCheckError("malloc size must be an int", expr.loc)
            self._malloc_counter += 1
            expr.site = f"{self._current_fn_name}.malloc{self._malloc_counter}"
            if expected is not None and expected.is_pointer():
                return expected
            return PointerType(INT)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, scope)
        if isinstance(expr, ast.Field):
            return self._check_field(expr, scope)
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Cast):
            target = self.resolve_type(expr.type_spec)
            src = self._check_expr(expr.operand, scope, expected=target)
            if target.is_pointer() and not src.is_pointer():
                raise TypeCheckError("cannot cast non-pointer to pointer", expr.loc)
            if not target.is_pointer() and src.is_pointer():
                raise TypeCheckError("cannot cast pointer to non-pointer", expr.loc)
            return target
        if isinstance(expr, ast.Ternary):
            self._check_condition(expr.cond, scope)
            t1 = self._check_expr(expr.if_true, scope, expected=expected)
            t2 = self._check_expr(expr.if_false, scope, expected=expected)
            if t1 == t2:
                return t1
            if {t1, t2} == {INT, FLOAT}:
                return FLOAT
            raise TypeCheckError(f"ternary arms disagree: {t1} vs {t2}", expr.loc)
        raise TypeCheckError(  # pragma: no cover - parser exhausts cases
            f"unknown expression {type(expr).__name__}", expr.loc
        )

    def _check_unary(self, expr: ast.Unary, scope: Scope) -> IRType:
        if expr.op == "&":
            inner = self._check_expr(expr.operand, scope)
            if not self._is_memory_lvalue(expr.operand):
                raise TypeCheckError(
                    "address-of requires a memory lvalue (global, field, or "
                    "element); locals live in registers",
                    expr.loc,
                )
            return PointerType(inner)
        ty = self._check_expr(expr.operand, scope)
        if expr.op == "*":
            if not isinstance(ty, PointerType):
                raise TypeCheckError(f"cannot dereference {ty}", expr.loc)
            if isinstance(ty.pointee, (ArrayType,)):
                return PointerType(ty.pointee.element)
            return ty.pointee
        if expr.op == "-":
            if not (ty.is_integer() or ty.is_float()):
                raise TypeCheckError(f"cannot negate {ty}", expr.loc)
            return ty
        if expr.op in ("!",):
            if not (ty.is_integer() or ty.is_float() or ty.is_pointer()):
                raise TypeCheckError(f"cannot apply ! to {ty}", expr.loc)
            return INT
        if expr.op == "~":
            if not ty.is_integer():
                raise TypeCheckError("~ requires an int operand", expr.loc)
            return INT
        raise TypeCheckError(f"unknown unary op {expr.op!r}", expr.loc)

    def _check_binary(self, expr: ast.Binary, scope: Scope) -> IRType:
        lt = self._check_expr(expr.lhs, scope)
        rt = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer() and rt.is_pointer():
                return INT
            if (lt.is_integer() or lt.is_float()) and (
                rt.is_integer() or rt.is_float()
            ):
                return INT
            raise TypeCheckError(f"cannot compare {lt} with {rt}", expr.loc)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (lt.is_integer() and rt.is_integer()):
                raise TypeCheckError(f"{op} requires int operands", expr.loc)
            return INT
        if op in ("+", "-"):
            if lt.is_pointer() and rt.is_integer():
                return lt
            if op == "+" and lt.is_integer() and rt.is_pointer():
                return rt
        if op in ("+", "-", "*", "/"):
            if lt.is_pointer() or rt.is_pointer():
                raise TypeCheckError(f"invalid pointer arithmetic {lt} {op} {rt}", expr.loc)
            if lt.is_float() or rt.is_float():
                return FLOAT
            return INT
        raise TypeCheckError(f"unknown binary op {op!r}", expr.loc)

    def _check_assign(self, expr: ast.Assign, scope: Scope) -> IRType:
        target_ty = self._check_expr(expr.target, scope)
        if not self._is_lvalue(expr.target):
            raise TypeCheckError("assignment target is not an lvalue", expr.loc)
        value_ty = self._check_expr(expr.value, scope, expected=target_ty)
        self._require_assignable(target_ty, value_ty, expr.loc)
        return target_ty

    def _check_index(self, expr: ast.Index, scope: Scope) -> IRType:
        base_ty = self._check_expr(expr.base, scope)
        index_ty = self._check_expr(expr.index, scope)
        if not index_ty.is_integer():
            raise TypeCheckError("array index must be an int", expr.loc)
        if isinstance(base_ty, PointerType):
            pointee = base_ty.pointee
            if isinstance(pointee, ArrayType):
                return pointee.element
            if isinstance(pointee, StructType):
                raise TypeCheckError("cannot index pointer-to-struct", expr.loc)
            return pointee
        raise TypeCheckError(f"cannot index value of type {base_ty}", expr.loc)

    def _check_field(self, expr: ast.Field, scope: Scope) -> IRType:
        base_ty = self._check_expr(expr.base, scope)
        if expr.arrow:
            if not (
                isinstance(base_ty, PointerType)
                and isinstance(base_ty.pointee, StructType)
            ):
                raise TypeCheckError("-> requires a pointer to struct", expr.loc)
            struct = base_ty.pointee
        else:
            if not isinstance(base_ty, StructType):
                raise TypeCheckError(". requires a struct value", expr.loc)
            struct = base_ty
        if not struct.has_field(expr.name):
            raise TypeCheckError(
                f"struct {struct.name} has no field {expr.name!r}", expr.loc
            )
        return struct.field_type(expr.name)

    def _check_call(self, expr: ast.Call, scope: Scope) -> IRType:
        if expr.name in INTRINSICS:
            ret, param_types = INTRINSICS[expr.name]
        elif expr.name in self.functions:
            fsym = self.functions[expr.name]
            ret, param_types = fsym.return_type, fsym.param_types
        else:
            raise TypeCheckError(f"call to undefined function {expr.name!r}", expr.loc)
        if len(expr.args) != len(param_types):
            raise TypeCheckError(
                f"{expr.name} expects {len(param_types)} args, got {len(expr.args)}",
                expr.loc,
            )
        for arg, pty in zip(expr.args, param_types):
            aty = self._check_expr(arg, scope, expected=pty)
            self._require_assignable(pty, aty, arg.loc)
        return ret

    # -- helpers ---------------------------------------------------------------------

    def _require_assignable(self, target: IRType, value: IRType, loc) -> None:
        if target == value:
            return
        if target.is_float() and value.is_integer():
            return  # implicit int -> float
        if target.is_integer() and value.is_float():
            return  # implicit float -> int (truncation)
        if target.is_pointer() and value.is_pointer():
            return  # pointers interconvert freely (malloc results, etc.)
        raise TypeCheckError(f"cannot assign {value} to {target}", loc)

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            sym = expr.binding
            return sym is not None and not isinstance(sym.ty, ArrayType)
        return isinstance(expr, (ast.Index, ast.Field)) or (
            isinstance(expr, ast.Unary) and expr.op == "*"
        )

    def _is_memory_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            sym = expr.binding
            return sym is not None and sym.is_memory_resident()
        return isinstance(expr, (ast.Index, ast.Field)) or (
            isinstance(expr, ast.Unary) and expr.op == "*"
        )


def check(program: ast.Program) -> Checker:
    """Run semantic analysis; returns the populated checker."""
    return Checker(program).check()
