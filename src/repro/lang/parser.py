"""Recursive-descent parser for MiniC.

The grammar is a proper C subset; precedence and associativity follow C.
See :mod:`repro.lang.ast` for the node shapes produced.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

#: Binary operator precedence (higher binds tighter), as in C.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_TYPE_KEYWORDS = ("int", "float", "void", "struct")


class Parser:
    """Parses a token stream into an :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok}", tok.loc)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok}", tok.loc)
        return self._next()

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind == "kw" and tok.value in _TYPE_KEYWORDS

    # -- types -------------------------------------------------------------------

    def _parse_type_spec(self) -> ast.TypeSpec:
        tok = self._peek()
        if not self._at_type():
            raise ParseError(f"expected type, found {tok}", tok.loc)
        self._next()
        if tok.value == "struct":
            name_tok = self._expect_ident()
            base: Union[str, Tuple[str, str]] = ("struct", name_tok.value)
        else:
            base = tok.value
        depth = 0
        while self._peek().is_punct("*"):
            self._next()
            depth += 1
        return ast.TypeSpec(tok.loc, base, depth)

    # -- top level ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self._peek().loc
        decls: List[ast.Node] = []
        while self._peek().kind != "eof":
            decls.append(self._parse_top_level())
        return ast.Program(loc, decls)

    def _parse_top_level(self) -> ast.Node:
        tok = self._peek()
        if tok.is_kw("struct") and self._peek(2).is_punct("{"):
            return self._parse_struct_decl()
        spec = self._parse_type_spec()
        name = self._expect_ident()
        if self._peek().is_punct("("):
            return self._parse_func_decl(spec, name)
        return self._parse_global_decl(spec, name)

    def _parse_struct_decl(self) -> ast.StructDecl:
        loc = self._next().loc  # 'struct'
        name = self._expect_ident().value
        self._expect_punct("{")
        fields: List[Tuple[ast.TypeSpec, str]] = []
        while not self._peek().is_punct("}"):
            fspec = self._parse_type_spec()
            fname = self._expect_ident().value
            self._expect_punct(";")
            fields.append((fspec, fname))
        self._expect_punct("}")
        self._expect_punct(";")
        return ast.StructDecl(loc, name, fields)

    def _parse_global_decl(self, spec: ast.TypeSpec, name: Token) -> ast.GlobalDecl:
        array_size: Optional[int] = None
        if self._accept_punct("["):
            size_tok = self._next()
            if size_tok.kind != "int":
                raise ParseError("array size must be an integer literal", size_tok.loc)
            array_size = size_tok.value
            self._expect_punct("]")
        init = None
        if self._accept_punct("="):
            init = self._parse_global_init()
        self._expect_punct(";")
        return ast.GlobalDecl(name.loc, spec, name.value, array_size, init)

    def _parse_global_init(self):
        if self._accept_punct("{"):
            values = [self._parse_literal()]
            while self._accept_punct(","):
                values.append(self._parse_literal())
            self._expect_punct("}")
            return values
        return self._parse_literal()

    def _parse_literal(self) -> Union[int, float]:
        sign = -1 if self._accept_punct("-") else 1
        tok = self._next()
        if tok.kind not in ("int", "float"):
            raise ParseError("expected numeric literal", tok.loc)
        return sign * tok.value

    def _parse_func_decl(self, spec: ast.TypeSpec, name: Token) -> ast.FuncDecl:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            if self._peek().is_kw("void") and self._peek(1).is_punct(")"):
                self._next()
            else:
                params.append(self._parse_param())
                while self._accept_punct(","):
                    params.append(self._parse_param())
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FuncDecl(name.loc, spec, name.value, params, body)

    def _parse_param(self) -> ast.Param:
        spec = self._parse_type_spec()
        name = self._expect_ident()
        # Array parameter notation decays to a pointer: `int buf[]`.
        if self._accept_punct("["):
            self._expect_punct("]")
            spec = ast.TypeSpec(spec.loc, spec.base, spec.pointer_depth + 1)
        return ast.Param(name.loc, spec, name.value)

    # -- statements ---------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        loc = self._expect_punct("{").loc
        stmts: List[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            stmts.append(self._parse_stmt())
        self._expect_punct("}")
        return ast.Block(loc, stmts)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("while"):
            return self._parse_while()
        if tok.is_kw("do"):
            return self._parse_do_while()
        if tok.is_kw("for"):
            return self._parse_for()
        if tok.is_kw("return"):
            self._next()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ast.Return(tok.loc, value)
        if tok.is_kw("break"):
            self._next()
            self._expect_punct(";")
            return ast.Break(tok.loc)
        if tok.is_kw("continue"):
            self._next()
            self._expect_punct(";")
            return ast.Continue(tok.loc)
        if self._at_type():
            return self._parse_var_decl()
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(tok.loc, expr)

    def _parse_var_decl(self) -> ast.VarDecl:
        spec = self._parse_type_spec()
        name = self._expect_ident()
        init = None
        if self._accept_punct("="):
            init = self._parse_expr()
        self._expect_punct(";")
        return ast.VarDecl(name.loc, spec, name.value, init)

    def _parse_if(self) -> ast.If:
        loc = self._next().loc
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt()
        orelse = None
        if self._peek().is_kw("else"):
            self._next()
            orelse = self._parse_stmt()
        return ast.If(loc, cond, then, orelse)

    def _parse_while(self) -> ast.While:
        loc = self._next().loc
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.While(loc, cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        loc = self._next().loc
        body = self._parse_stmt()
        if not self._peek().is_kw("while"):
            raise ParseError("expected 'while' after do-body", self._peek().loc)
        self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(loc, body, cond)

    def _parse_for(self) -> ast.For:
        loc = self._next().loc
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self._peek().is_punct(";"):
            if self._at_type():
                init = self._parse_var_decl()  # consumes the ';'
            else:
                expr = self._parse_expr()
                self._expect_punct(";")
                init = ast.ExprStmt(loc, expr)
        else:
            self._expect_punct(";")
        cond = None
        if not self._peek().is_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        step = None
        if not self._peek().is_punct(")"):
            step = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.For(loc, init, cond, step, body)

    # -- expressions ------------------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        if self._peek().is_punct("="):
            loc = self._next().loc
            rhs = self._parse_assignment()
            return ast.Assign(loc, lhs, rhs)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._peek().is_punct("?"):
            loc = self._next().loc
            if_true = self._parse_expr()
            self._expect_punct(":")
            if_false = self._parse_ternary()
            return ast.Ternary(loc, cond, if_true, if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind != "punct":
                return lhs
            prec = _BINARY_PRECEDENCE.get(tok.value)
            if prec is None or prec < min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(tok.loc, tok.value, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "punct" and tok.value in ("-", "!", "~", "*", "&"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(tok.loc, tok.value, operand)
        # Cast: '(' type-spec ')' unary
        if tok.is_punct("(") and self._at_type(1):
            self._next()
            spec = self._parse_type_spec()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(tok.loc, spec, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ast.Index(tok.loc, expr, index)
            elif tok.is_punct("."):
                self._next()
                name = self._expect_ident().value
                expr = ast.Field(tok.loc, expr, name, arrow=False)
            elif tok.is_punct("->"):
                self._next()
                name = self._expect_ident().value
                expr = ast.Field(tok.loc, expr, name, arrow=True)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return ast.IntLit(tok.loc, tok.value)
        if tok.kind == "float":
            self._next()
            return ast.FloatLit(tok.loc, tok.value)
        if tok.is_kw("malloc"):
            self._next()
            self._expect_punct("(")
            size = self._parse_expr()
            self._expect_punct(")")
            return ast.Malloc(tok.loc, size)
        if tok.is_kw("sizeof"):
            self._next()
            self._expect_punct("(")
            spec = self._parse_type_spec()
            self._expect_punct(")")
            return ast.SizeOf(tok.loc, spec)
        if tok.kind == "ident":
            self._next()
            if self._peek().is_punct("("):
                self._next()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self._parse_expr())
                    while self._accept_punct(","):
                        args.append(self._parse_expr())
                self._expect_punct(")")
                return ast.Call(tok.loc, tok.value, args)
            return ast.Ident(tok.loc, tok.value)
        if tok.is_punct("("):
            self._next()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok}", tok.loc)


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
