"""AST-level loop unrolling.

The paper's compiler (Trimaran) schedules *regions* — superblocks with
substantial instruction-level parallelism.  Our regions are basic blocks,
so without unrolling a 2-cluster machine sees almost no ILP in the tiny
loop bodies of the kernels and every partitioning question degenerates.
Unrolling canonical counted loops restores the region-level ILP the
paper's infrastructure had.

The transform rewrites innermost, straight-line, canonical ``for`` loops

    for (i = e0; i < e1; i = i + c) BODY

into a main loop executing ``factor`` copies per test plus a remainder:

    {
        i = e0;
        for (; i + (factor-1)*c < e1; ) {
            { BODY } i = i + c;   (x factor)
        }
        while (i < e1) { { BODY } i = i + c; }
    }

which is semantically equivalent for any trip count provided the bound is
pure, the body is straight-line, and the body never writes ``i`` — all
checked before rewriting.  Each body copy is wrapped in its own block so
local declarations keep their scoping.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from . import ast


class UnrollConfig:
    """Tunables for the unroller.

    ``factor`` is the *maximum* unroll factor; big bodies are unrolled
    less so regions stay near ``target_stmts`` statements (mirroring the
    code-growth budgets of production unrollers).
    """

    def __init__(
        self, factor: int = 4, max_body_stmts: int = 64, target_stmts: int = 48
    ):
        if factor < 2:
            raise ValueError("unroll factor must be >= 2")
        self.factor = factor
        self.max_body_stmts = max_body_stmts
        self.target_stmts = target_stmts

    def factor_for(self, body_stmts: int) -> int:
        """Adaptive factor: halve until the unrolled body fits the target."""
        factor = self.factor
        while factor > 2 and body_stmts * factor > self.target_stmts:
            factor //= 2
        return factor


def unroll_program(program: ast.Program, config: Optional[UnrollConfig] = None) -> int:
    """Unroll eligible loops in place; returns the number of loops unrolled."""
    config = config or UnrollConfig()
    count = 0
    for func in program.functions:
        count += _unroll_block(func.body, config)
    return count


def _unroll_block(block: ast.Block, config: UnrollConfig) -> int:
    count = 0
    for i, stmt in enumerate(list(block.stmts)):
        count += _unroll_stmt(stmt, config)
        if isinstance(stmt, ast.For):
            replacement = _try_unroll(stmt, config)
            if replacement is not None:
                block.stmts[i] = replacement
                count += 1
    return count


def _unroll_stmt(stmt: ast.Stmt, config: UnrollConfig) -> int:
    """Recurse into nested statements (the loop itself is handled by the
    caller so the innermost loops are rewritten first)."""
    count = 0
    if isinstance(stmt, ast.Block):
        count += _unroll_block(stmt, config)
    elif isinstance(stmt, ast.If):
        count += _unroll_stmt(stmt.then, config)
        if stmt.orelse is not None:
            count += _unroll_stmt(stmt.orelse, config)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        count += _unroll_stmt(stmt.body, config)
    elif isinstance(stmt, ast.For):
        count += _unroll_stmt(stmt.body, config)
    return count


# ---------------------------------------------------------------------------
# Canonical-form analysis
# ---------------------------------------------------------------------------


def _try_unroll(loop: ast.For, config: UnrollConfig) -> Optional[ast.Stmt]:
    shape = _canonical_shape(loop)
    if shape is None:
        return None
    var, limit, step_c, cmp_op = shape
    body = loop.body
    if not _is_straight_line(body, var):
        return None
    body_stmts = _stmt_count(body)
    if body_stmts > config.max_body_stmts:
        return None
    if not _is_pure(limit, forbid_var=var):
        return None

    factor = config.factor_for(body_stmts)
    loc = loop.loc

    def ident() -> ast.Ident:
        return ast.Ident(loc, var)

    def advance() -> ast.Stmt:
        return ast.ExprStmt(
            loc,
            ast.Assign(
                loc, ident(), ast.Binary(loc, "+", ident(), ast.IntLit(loc, step_c))
            ),
        )

    def body_copy() -> ast.Stmt:
        clone = copy.deepcopy(body)
        return clone if isinstance(clone, ast.Block) else ast.Block(loc, [clone])

    # for (; i + (factor-1)*c < e1; ) { BODY i+=c  (x factor) }
    guard = ast.Binary(
        loc,
        cmp_op,
        ast.Binary(loc, "+", ident(), ast.IntLit(loc, (factor - 1) * step_c)),
        copy.deepcopy(limit),
    )
    main_stmts: List[ast.Stmt] = []
    for _ in range(factor):
        main_stmts.append(body_copy())
        main_stmts.append(advance())
    main_loop = ast.For(loc, None, guard, None, ast.Block(loc, main_stmts))

    remainder_cond = ast.Binary(loc, cmp_op, ident(), copy.deepcopy(limit))
    remainder = ast.While(
        loc, remainder_cond, ast.Block(loc, [body_copy(), advance()])
    )

    init = loop.init if loop.init is not None else None
    stmts: List[ast.Stmt] = []
    if init is not None:
        stmts.append(init)
    stmts.append(main_loop)
    stmts.append(remainder)
    return ast.Block(loc, stmts)


def _canonical_shape(loop: ast.For) -> Optional[Tuple[str, ast.Expr, int, str]]:
    """Match ``for (i = e0; i <[=] e1; i = i + c)`` (c > 0) or the
    decreasing mirror ``for (i = e0; i >[=] e1; i = i - c)``; returns
    (var, limit, signed_step, cmp)."""
    if loop.cond is None or loop.step is None:
        return None
    # Induction variable from the init clause.
    var: Optional[str] = None
    if isinstance(loop.init, ast.VarDecl):
        if loop.init.init is None:
            return None
        var = loop.init.name
    elif isinstance(loop.init, ast.ExprStmt) and isinstance(
        loop.init.expr, ast.Assign
    ):
        target = loop.init.expr.target
        if isinstance(target, ast.Ident):
            var = target.name
    if var is None:
        return None
    # Condition: i <op> e1 with the variable on the left.
    cond = loop.cond
    if not (
        isinstance(cond, ast.Binary)
        and cond.op in ("<", "<=", ">", ">=")
        and isinstance(cond.lhs, ast.Ident)
        and cond.lhs.name == var
    ):
        return None
    increasing = cond.op in ("<", "<=")
    # Step: i = i + c / i = c + i (increasing) or i = i - c (decreasing).
    step = loop.step
    if not (
        isinstance(step, ast.Assign)
        and isinstance(step.target, ast.Ident)
        and step.target.name == var
        and isinstance(step.value, ast.Binary)
        and step.value.op in ("+", "-")
    ):
        return None
    lhs, rhs = step.value.lhs, step.value.rhs
    c: Optional[int] = None
    if isinstance(lhs, ast.Ident) and lhs.name == var and isinstance(rhs, ast.IntLit):
        c = rhs.value if step.value.op == "+" else -rhs.value
    elif (
        step.value.op == "+"
        and isinstance(rhs, ast.Ident)
        and rhs.name == var
        and isinstance(lhs, ast.IntLit)
    ):
        c = lhs.value
    if c is None:
        return None
    if increasing and c < 1:
        return None
    if not increasing and c > -1:
        return None
    return var, cond.rhs, c, cond.op


# ---------------------------------------------------------------------------
# Safety scans
# ---------------------------------------------------------------------------


def _is_straight_line(stmt: ast.Stmt, var: str) -> bool:
    """Only ExprStmt / VarDecl statements, no writes to the induction var."""
    if isinstance(stmt, ast.Block):
        return all(_is_straight_line(s, var) for s in stmt.stmts)
    if isinstance(stmt, ast.VarDecl):
        if stmt.name == var:
            return False
        return stmt.init is None or not _writes_var(stmt.init, var)
    if isinstance(stmt, ast.ExprStmt):
        return not _writes_var(stmt.expr, var)
    return False


def _writes_var(expr: ast.Expr, var: str) -> bool:
    if isinstance(expr, ast.Assign):
        target = expr.target
        if isinstance(target, ast.Ident) and target.name == var:
            return True
        return _writes_var(target, var) or _writes_var(expr.value, var)
    for child in _children(expr):
        if _writes_var(child, var):
            return True
    return False


def _is_pure(expr: ast.Expr, forbid_var: Optional[str] = None) -> bool:
    """No calls, allocations or assignments; optionally no reference to a
    variable (the bound must not depend on the induction variable)."""
    if isinstance(expr, (ast.Call, ast.Malloc, ast.Assign)):
        return False
    if (
        forbid_var is not None
        and isinstance(expr, ast.Ident)
        and expr.name == forbid_var
    ):
        return False
    return all(_is_pure(child, forbid_var) for child in _children(expr))


def _children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Field):
        return [expr.base]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Malloc):
        return [expr.size]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.if_true, expr.if_false]
    return []


def _stmt_count(stmt: ast.Stmt) -> int:
    if isinstance(stmt, ast.Block):
        return sum(_stmt_count(s) for s in stmt.stmts)
    return 1
