"""Abstract syntax tree for MiniC.

Nodes are plain data classes; the type checker decorates expressions with
a ``ty`` attribute (an :class:`repro.ir.types.IRType`) consumed by
lowering.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .errors import SourceLocation


class Node:
    """Base AST node; every node records its source location."""

    def __init__(self, loc: SourceLocation):
        self.loc = loc


# ---------------------------------------------------------------------------
# Type syntax (resolved to IR types by the checker)
# ---------------------------------------------------------------------------


class TypeSpec(Node):
    """A syntactic type: base name + pointer depth.

    ``base`` is ``"int"``, ``"float"``, ``"void"`` or ``("struct", name)``.
    """

    def __init__(self, loc, base, pointer_depth: int = 0):
        super().__init__(loc)
        self.base = base
        self.pointer_depth = pointer_depth

    def __str__(self) -> str:
        base = self.base if isinstance(self.base, str) else f"struct {self.base[1]}"
        return base + "*" * self.pointer_depth


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base expression; ``ty`` is set by the type checker."""

    def __init__(self, loc):
        super().__init__(loc)
        self.ty = None


class IntLit(Expr):
    def __init__(self, loc, value: int):
        super().__init__(loc)
        self.value = value


class FloatLit(Expr):
    def __init__(self, loc, value: float):
        super().__init__(loc)
        self.value = value


class Ident(Expr):
    """A variable reference; the checker sets ``binding`` to the symbol."""

    def __init__(self, loc, name: str):
        super().__init__(loc)
        self.name = name
        self.binding = None


class Unary(Expr):
    """Unary operator: ``-``, ``!``, ``~``, ``*`` (deref), ``&`` (address-of)."""

    def __init__(self, loc, op: str, operand: Expr):
        super().__init__(loc)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """Binary operator, including comparisons and short-circuit ``&&``/``||``."""

    def __init__(self, loc, op: str, lhs: Expr, rhs: Expr):
        super().__init__(loc)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """Assignment expression ``lvalue = value`` (value usable in context)."""

    def __init__(self, loc, target: Expr, value: Expr):
        super().__init__(loc)
        self.target = target
        self.value = value


class Index(Expr):
    """Array/pointer subscript ``base[index]``."""

    def __init__(self, loc, base: Expr, index: Expr):
        super().__init__(loc)
        self.base = base
        self.index = index


class Field(Expr):
    """Struct member access: ``base.name`` (``arrow=False``) or ``base->name``."""

    def __init__(self, loc, base: Expr, name: str, arrow: bool):
        super().__init__(loc)
        self.base = base
        self.name = name
        self.arrow = arrow


class Call(Expr):
    """Function call by name."""

    def __init__(self, loc, name: str, args: List[Expr]):
        super().__init__(loc)
        self.name = name
        self.args = args


class Malloc(Expr):
    """Heap allocation ``malloc(size_bytes)``; type comes from context."""

    def __init__(self, loc, size: Expr):
        super().__init__(loc)
        self.size = size
        self.site: Optional[str] = None  # set by the checker


class SizeOf(Expr):
    """``sizeof(type)`` — folded to a constant by the checker."""

    def __init__(self, loc, type_spec: TypeSpec):
        super().__init__(loc)
        self.type_spec = type_spec
        self.value: Optional[int] = None


class Cast(Expr):
    """Explicit conversion ``(int)e`` or ``(float)e`` or pointer cast."""

    def __init__(self, loc, type_spec: TypeSpec, operand: Expr):
        super().__init__(loc)
        self.type_spec = type_spec
        self.operand = operand


class Ternary(Expr):
    """Conditional expression ``cond ? a : b``."""

    def __init__(self, loc, cond: Expr, if_true: Expr, if_false: Expr):
        super().__init__(loc)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


class ExprStmt(Stmt):
    def __init__(self, loc, expr: Expr):
        super().__init__(loc)
        self.expr = expr


class VarDecl(Stmt):
    """Local scalar/pointer declaration with optional initializer."""

    def __init__(self, loc, type_spec: TypeSpec, name: str, init: Optional[Expr]):
        super().__init__(loc)
        self.type_spec = type_spec
        self.name = name
        self.init = init
        self.binding = None  # set by the checker


class Block(Stmt):
    def __init__(self, loc, stmts: List[Stmt]):
        super().__init__(loc)
        self.stmts = stmts


class If(Stmt):
    def __init__(self, loc, cond: Expr, then: Stmt, orelse: Optional[Stmt]):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class While(Stmt):
    def __init__(self, loc, cond: Expr, body: Stmt):
        super().__init__(loc)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, loc, body: Stmt, cond: Expr):
        super().__init__(loc)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(
        self,
        loc,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
    ):
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    def __init__(self, loc, value: Optional[Expr]):
        super().__init__(loc)
        self.value = value


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


class Param(Node):
    def __init__(self, loc, type_spec: TypeSpec, name: str):
        super().__init__(loc)
        self.type_spec = type_spec
        self.name = name


class FuncDecl(Node):
    def __init__(
        self,
        loc,
        return_spec: TypeSpec,
        name: str,
        params: List[Param],
        body: Block,
    ):
        super().__init__(loc)
        self.return_spec = return_spec
        self.name = name
        self.params = params
        self.body = body


class GlobalDecl(Node):
    """Global variable: scalar, pointer, or array (``array_size`` not None).

    ``init`` is an optional scalar literal or list of literals.
    """

    def __init__(
        self,
        loc,
        type_spec: TypeSpec,
        name: str,
        array_size: Optional[int],
        init: Union[None, int, float, List],
    ):
        super().__init__(loc)
        self.type_spec = type_spec
        self.name = name
        self.array_size = array_size
        self.init = init


class StructDecl(Node):
    """``struct Name { fields };`` — fields are (TypeSpec, name) pairs."""

    def __init__(self, loc, name: str, fields: List[Tuple[TypeSpec, str]]):
        super().__init__(loc)
        self.name = name
        self.fields = fields


class Program(Node):
    """A whole MiniC translation unit."""

    def __init__(self, loc, decls: List[Node]):
        super().__init__(loc)
        self.decls = decls

    @property
    def functions(self) -> List[FuncDecl]:
        return [d for d in self.decls if isinstance(d, FuncDecl)]

    @property
    def globals(self) -> List[GlobalDecl]:
        return [d for d in self.decls if isinstance(d, GlobalDecl)]

    @property
    def structs(self) -> List[StructDecl]:
        return [d for d in self.decls if isinstance(d, StructDecl)]
