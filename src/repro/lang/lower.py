"""Lowering: typed MiniC AST -> repro IR.

Locals and parameters live in virtual registers (assignment overwrites the
register — the IR is not SSA); globals, struct fields, array elements and
heap storage are reached through explicit address arithmetic (``PTRADD``)
and ``LOAD``/``STORE``.  Control flow lowers to a conventional CFG; ``&&``,
``||`` and ``?:`` lower to short-circuit diamonds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..ir import (
    Constant,
    Function,
    GlobalAddress,
    IRBuilder,
    Module,
    Opcode,
    Operation,
    VirtualRegister,
)
from ..ir.types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    IRType,
    PointerType,
    StructType,
)
from . import ast
from .errors import TypeCheckError
from .sema import Checker, Symbol, check
from .parser import parse


class _LoopContext:
    """Branch targets for break/continue inside the innermost loop."""

    def __init__(self, break_block, continue_block):
        self.break_block = break_block
        self.continue_block = continue_block


class Lowerer:
    """Lowers one checked program into a fresh :class:`Module`."""

    def __init__(self, program: ast.Program, checker: Checker, name: str = "module"):
        self.program = program
        self.checker = checker
        self.module = Module(name)
        self._b: Optional[IRBuilder] = None
        self._func: Optional[Function] = None
        self._vregs: Dict[int, VirtualRegister] = {}  # id(symbol) -> vreg
        self._loops: List[_LoopContext] = []

    # -- entry point -------------------------------------------------------------

    def lower(self) -> Module:
        for gdecl in self.program.globals:
            sym = self.checker.globals[gdecl.name]
            self.module.add_global(gdecl.name, sym.ty, gdecl.init)
        for fdecl in self.program.functions:
            self._lower_function(fdecl)
        return self.module

    # -- functions ----------------------------------------------------------------

    def _lower_function(self, decl: ast.FuncDecl) -> None:
        fsym = self.checker.functions[decl.name]
        params: List[VirtualRegister] = []
        self._vregs = {}
        func = Function(decl.name, [], fsym.return_type)
        for i, (p, pty) in enumerate(zip(decl.params, fsym.param_types)):
            reg = func.new_vreg(pty, p.name)
            params.append(reg)
        func.params = params
        self._func = func
        self._b = IRBuilder(func)
        entry = self._b.new_block("entry")
        self._b.set_block(entry)

        # Bind parameter symbols to their registers. The checker created one
        # scope per function; rediscover symbols by walking the declaration.
        for p, reg in zip(decl.params, params):
            self._bind_param(decl, p.name, reg)

        self._lower_block(decl.body)
        self._seal_function(func, fsym.return_type)
        self.module.add_function(func)

    def _bind_param(self, decl: ast.FuncDecl, name: str, reg: VirtualRegister) -> None:
        # Parameter symbols are matched by (function, name); sema stored the
        # binding on each Ident node, so map symbol identity -> register by
        # scanning for any Ident that bound a param with this name.
        self._param_bindings = getattr(self, "_param_bindings", {})
        self._param_bindings[(decl.name, name)] = reg

    def _symbol_reg(self, sym: Symbol) -> VirtualRegister:
        key = id(sym)
        if key not in self._vregs:
            if sym.kind == "param":
                assert self._func is not None
                fname = self._func.name
                reg = self._param_bindings.get((fname, sym.name))
                if reg is None:  # pragma: no cover - sema guarantees binding
                    raise TypeCheckError(f"unbound parameter {sym.name!r}")
                self._vregs[key] = reg
            else:
                assert self._func is not None
                self._vregs[key] = self._func.new_vreg(sym.ty, sym.name)
        return self._vregs[key]

    def _seal_function(self, func: Function, return_type: IRType) -> None:
        """Terminate fall-through blocks and drop unreachable ones."""
        for block in list(func):
            if block.terminator is None:
                if return_type == VOID:
                    block.append(Operation(Opcode.RET))
                elif return_type.is_float():
                    block.append(Operation(Opcode.RET, srcs=[Constant(0.0, FLOAT)]))
                else:
                    block.append(Operation(Opcode.RET, srcs=[Constant(0, return_type)]))
        _remove_unreachable(func)

    # -- statements -----------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        b = self._b
        assert b is not None and b.block is not None
        if b.block.terminator is not None:
            # Dead code after return/break/continue: park it in a fresh
            # unreachable block so lowering can proceed; _seal_function
            # removes it afterwards.
            dead = b.new_block()
            b.set_block(dead)

        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            sym = stmt.binding
            reg = self._symbol_reg(sym)
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                value = self._coerce(value, sym.ty)
                b.mov_to(reg, value)
            else:
                zero = Constant(0.0, FLOAT) if sym.ty.is_float() else Constant(0, INT)
                b.mov_to(reg, zero)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                b.ret()
            else:
                value = self._lower_expr(stmt.value)
                assert self._func is not None
                b.ret(self._coerce(value, self._func.return_type))
        elif isinstance(stmt, ast.Break):
            b.br(self._loops[-1].break_block)
        elif isinstance(stmt, ast.Continue):
            b.br(self._loops[-1].continue_block)
        else:  # pragma: no cover - checker exhausts statement kinds
            raise TypeCheckError(f"cannot lower {type(stmt).__name__}", stmt.loc)

    def _lower_if(self, stmt: ast.If) -> None:
        b = self._b
        then_bb = b.new_block()
        end_bb = b.new_block()
        else_bb = b.new_block() if stmt.orelse is not None else end_bb
        cond = self._lower_condition(stmt.cond)
        b.cbr(cond, then_bb, else_bb)
        b.set_block(then_bb)
        self._lower_stmt(stmt.then)
        if b.block.terminator is None:
            b.br(end_bb)
        if stmt.orelse is not None:
            b.set_block(else_bb)
            self._lower_stmt(stmt.orelse)
            if b.block.terminator is None:
                b.br(end_bb)
        b.set_block(end_bb)

    def _lower_while(self, stmt: ast.While) -> None:
        b = self._b
        cond_bb = b.new_block()
        body_bb = b.new_block()
        exit_bb = b.new_block()
        b.br(cond_bb)
        b.set_block(cond_bb)
        cond = self._lower_condition(stmt.cond)
        b.cbr(cond, body_bb, exit_bb)
        b.set_block(body_bb)
        self._loops.append(_LoopContext(exit_bb, cond_bb))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        if b.block.terminator is None:
            b.br(cond_bb)
        b.set_block(exit_bb)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        b = self._b
        body_bb = b.new_block()
        cond_bb = b.new_block()
        exit_bb = b.new_block()
        b.br(body_bb)
        b.set_block(body_bb)
        self._loops.append(_LoopContext(exit_bb, cond_bb))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        if b.block.terminator is None:
            b.br(cond_bb)
        b.set_block(cond_bb)
        cond = self._lower_condition(stmt.cond)
        b.cbr(cond, body_bb, exit_bb)
        b.set_block(exit_bb)

    def _lower_for(self, stmt: ast.For) -> None:
        b = self._b
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        cond_bb = b.new_block()
        body_bb = b.new_block()
        step_bb = b.new_block()
        exit_bb = b.new_block()
        b.br(cond_bb)
        b.set_block(cond_bb)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            b.cbr(cond, body_bb, exit_bb)
        else:
            b.br(body_bb)
        b.set_block(body_bb)
        self._loops.append(_LoopContext(exit_bb, step_bb))
        self._lower_stmt(stmt.body)
        self._loops.pop()
        if b.block.terminator is None:
            b.br(step_bb)
        b.set_block(step_bb)
        if stmt.step is not None:
            self._lower_expr(stmt.step, want_value=False)
        b.br(cond_bb)
        b.set_block(exit_bb)

    # -- expressions ----------------------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr):
        """Lower a branch condition to an i32 truth value."""
        value = self._lower_expr(expr)
        if value.ty.is_float():
            return self._b.fcmp("ne", value, Constant(0.0, FLOAT))
        return value

    def _lower_expr(self, expr: ast.Expr, want_value: bool = True):
        b = self._b
        if isinstance(expr, ast.IntLit):
            return Constant(expr.value, INT)
        if isinstance(expr, ast.FloatLit):
            return Constant(expr.value, FLOAT)
        if isinstance(expr, ast.SizeOf):
            return Constant(expr.value, INT)
        if isinstance(expr, ast.Ident):
            sym = expr.binding
            if sym.kind == "global":
                if isinstance(sym.ty, ArrayType):
                    return GlobalAddress(sym.name, sym.ty.element)  # decayed
                return b.load(GlobalAddress(sym.name, sym.ty))
            return self._symbol_reg(sym)
        if isinstance(expr, ast.Malloc):
            size = self._lower_expr(expr.size)
            pointee = expr.ty.pointee if isinstance(expr.ty, PointerType) else INT
            return b.malloc(size, expr.site, pointee)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr, want_value)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Index):
            addr, elem_ty = self._lower_address(expr)
            return b.load(addr, elem_ty)
        if isinstance(expr, ast.Field):
            addr, field_ty = self._lower_address(expr)
            return b.load(addr, field_ty)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Cast):
            value = self._lower_expr(expr.operand)
            return self._coerce(value, expr.ty)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        raise TypeCheckError(  # pragma: no cover - checker exhausts cases
            f"cannot lower {type(expr).__name__}", expr.loc
        )

    def _lower_assign(self, expr: ast.Assign, want_value: bool):
        b = self._b
        value = self._lower_expr(expr.value)
        value = self._coerce(value, expr.ty)
        target = expr.target
        if isinstance(target, ast.Ident) and target.binding.kind != "global":
            reg = self._symbol_reg(target.binding)
            b.mov_to(reg, value)
            return reg
        addr, _ = self._lower_address(target)
        b.store(value, addr)
        return value if want_value else value

    def _lower_address(self, expr: ast.Expr) -> Tuple[object, IRType]:
        """Lower a memory lvalue to (address value, value type)."""
        b = self._b
        if isinstance(expr, ast.Ident):
            sym = expr.binding
            assert sym.kind == "global", "register lvalues handled by caller"
            if isinstance(sym.ty, ArrayType):
                return GlobalAddress(sym.name, sym.ty.element), sym.ty.element
            return GlobalAddress(sym.name, sym.ty), sym.ty
        if isinstance(expr, ast.Index):
            base = self._lower_expr(expr.base)
            elem_ty = expr.ty
            index = self._lower_expr(expr.index)
            offset = self._scale(index, elem_ty.size())
            addr = b.ptradd(base, offset, PointerType(elem_ty))
            return addr, elem_ty
        if isinstance(expr, ast.Field):
            field_ty = expr.ty
            if expr.arrow:
                base = self._lower_expr(expr.base)
                struct = expr.base.ty.pointee
            else:
                base, _ = self._lower_address(expr.base)
                struct = expr.base.ty
            offset = struct.offset_of(expr.name)
            if offset == 0:
                # Reuse the base pointer; retype via zero-length ptradd only
                # when the base is already correctly typed.
                addr = b.ptradd(base, Constant(0, INT), PointerType(field_ty))
            else:
                addr = b.ptradd(base, Constant(offset, INT), PointerType(field_ty))
            return addr, field_ty
        if isinstance(expr, ast.Unary) and expr.op == "*":
            ptr = self._lower_expr(expr.operand)
            return ptr, expr.ty
        raise TypeCheckError("expression is not a memory lvalue", expr.loc)

    def _scale(self, index, elem_size: int):
        """index * elem_size, folding constant indices."""
        if isinstance(index, Constant):
            return Constant(index.value * elem_size, INT)
        if elem_size == 1:
            return index
        return self._b.mul(index, Constant(elem_size, INT))

    def _lower_unary(self, expr: ast.Unary):
        b = self._b
        if expr.op == "&":
            addr, _ = self._lower_address(expr.operand)
            return addr
        if expr.op == "*":
            ptr = self._lower_expr(expr.operand)
            return b.load(ptr, expr.ty)
        value = self._lower_expr(expr.operand)
        if expr.op == "-":
            return b.fneg(value) if value.ty.is_float() else b.neg(value)
        if expr.op == "!":
            if value.ty.is_float():
                return b.fcmp("eq", value, Constant(0.0, FLOAT))
            return b.cmp("eq", value, Constant(0, INT))
        if expr.op == "~":
            return b.not_(value)
        raise TypeCheckError(f"unknown unary {expr.op!r}", expr.loc)

    _INT_OPS = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "<<": "shl", ">>": "shr", "&": "and_", "|": "or_", "^": "xor",
    }
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

    def _lower_binary(self, expr: ast.Binary):
        b = self._b
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        if op in self._CMP:
            if lhs.ty.is_float() or rhs.ty.is_float():
                lhs = self._coerce(lhs, FLOAT)
                rhs = self._coerce(rhs, FLOAT)
                return b.fcmp(self._CMP[op], lhs, rhs)
            return b.cmp(self._CMP[op], lhs, rhs)
        # Pointer arithmetic scales by element size.
        if lhs.ty.is_pointer() or rhs.ty.is_pointer():
            if rhs.ty.is_pointer():
                lhs, rhs = rhs, lhs
            elem = lhs.ty.pointee
            elem_size = elem.size() if not isinstance(elem, ArrayType) else elem.element.size()
            offset = self._scale(rhs, elem_size)
            if op == "-":
                offset = b.neg(offset) if not isinstance(offset, Constant) else Constant(
                    -offset.value, INT
                )
            return b.ptradd(lhs, offset, expr.ty)
        if expr.ty.is_float():
            lhs = self._coerce(lhs, FLOAT)
            rhs = self._coerce(rhs, FLOAT)
            return getattr(b, self._FLOAT_OPS[op])(lhs, rhs)
        return getattr(b, self._INT_OPS[op])(lhs, rhs)

    def _lower_short_circuit(self, expr: ast.Binary):
        b = self._b
        assert self._func is not None
        result = self._func.new_vreg(INT, "sc")
        rhs_bb = b.new_block()
        end_bb = b.new_block()
        lhs_cond = self._lower_condition_value(expr.lhs)
        if expr.op == "&&":
            b.mov_to(result, Constant(0, INT))
            b.cbr(lhs_cond, rhs_bb, end_bb)
        else:
            b.mov_to(result, Constant(1, INT))
            b.cbr(lhs_cond, end_bb, rhs_bb)
        b.set_block(rhs_bb)
        rhs_cond = self._lower_condition_value(expr.rhs)
        truthy = b.cmp("ne", rhs_cond, Constant(0, INT))
        b.mov_to(result, truthy)
        b.br(end_bb)
        b.set_block(end_bb)
        return result

    def _lower_condition_value(self, expr: ast.Expr):
        value = self._lower_expr(expr)
        if value.ty.is_float():
            return self._b.fcmp("ne", value, Constant(0.0, FLOAT))
        return value

    def _lower_ternary(self, expr: ast.Ternary):
        b = self._b
        assert self._func is not None
        if _select_safe(expr.if_true) and _select_safe(expr.if_false):
            # Pure, non-faulting arms lower to a SELECT: both sides are
            # evaluated and the condition picks one — the predicated form
            # if-conversion relies on for straight-line regions.
            cond = self._lower_condition(expr.cond)
            tval = self._coerce(self._lower_expr(expr.if_true), expr.ty)
            fval = self._coerce(self._lower_expr(expr.if_false), expr.ty)
            return b.select(cond, tval, fval)
        result = self._func.new_vreg(expr.ty, "sel")
        then_bb = b.new_block()
        else_bb = b.new_block()
        end_bb = b.new_block()
        cond = self._lower_condition(expr.cond)
        b.cbr(cond, then_bb, else_bb)
        b.set_block(then_bb)
        tval = self._coerce(self._lower_expr(expr.if_true), expr.ty)
        b.mov_to(result, tval)
        b.br(end_bb)
        b.set_block(else_bb)
        fval = self._coerce(self._lower_expr(expr.if_false), expr.ty)
        b.mov_to(result, fval)
        b.br(end_bb)
        b.set_block(end_bb)
        return result

    def _lower_call(self, expr: ast.Call):
        b = self._b
        from .sema import INTRINSICS

        if expr.name in INTRINSICS:
            ret, param_types = INTRINSICS[expr.name]
        else:
            fsym = self.checker.functions[expr.name]
            ret, param_types = fsym.return_type, fsym.param_types
        args = []
        for arg, pty in zip(expr.args, param_types):
            args.append(self._coerce(self._lower_expr(arg), pty))
        return b.call(expr.name, args, ret)

    def _coerce(self, value, want: IRType):
        """Insert ITOF/FTOI for implicit numeric conversions."""
        if value.ty == want:
            return value
        if want.is_float() and value.ty.is_integer():
            if isinstance(value, Constant):
                return Constant(float(value.value), FLOAT)
            return self._b.itof(value)
        if want.is_integer() and value.ty.is_float():
            if isinstance(value, Constant):
                return Constant(int(value.value), INT)
            return self._b.ftoi(value)
        if want.is_pointer() and value.ty.is_pointer():
            return value  # pointer types interconvert without code
        if want.is_integer() and value.ty.is_integer():
            return value
        raise TypeCheckError(f"cannot coerce {value.ty} to {want}")


def _select_safe(expr: ast.Expr) -> bool:
    """Arms that may be evaluated unconditionally for a SELECT: register
    arithmetic and scalar-global reads only — no computed-address loads,
    no division, no side effects."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.SizeOf)):
        return True
    if isinstance(expr, ast.Ident):
        return True  # locals are registers; global scalars cannot fault
    if isinstance(expr, ast.Unary):
        return expr.op in ("-", "!", "~") and _select_safe(expr.operand)
    if isinstance(expr, ast.Binary):
        if expr.op in ("/", "%"):
            return False
        return _select_safe(expr.lhs) and _select_safe(expr.rhs)
    if isinstance(expr, ast.Cast):
        return _select_safe(expr.operand)
    if isinstance(expr, ast.Ternary):
        return (
            _select_safe(expr.cond)
            and _select_safe(expr.if_true)
            and _select_safe(expr.if_false)
        )
    return False


def _remove_unreachable(func: Function) -> None:
    """Drop blocks not reachable from the entry block."""
    if not func.blocks:
        return
    seen = set()
    work = [func.entry.name]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for succ in func.blocks[name].successors():
            if succ not in seen:
                work.append(succ)
    for name in [n for n in func.blocks if n not in seen]:
        func.remove_block(name)


def compile_source(
    source: str,
    name: str = "module",
    unroll_factor: int = 0,
    if_convert: bool = False,
) -> Module:
    """Compile MiniC source text to a verified IR module.

    ``if_convert`` predicates small control diamonds into selects (the
    hyperblock analogue); ``unroll_factor`` >= 2 then unrolls eligible
    innermost counted loops (see :mod:`repro.lang.unroll`).  Both default
    off so the frontend is a pure translator; the evaluation pipeline
    enables both to recover Trimaran-style region ILP.
    """
    from ..ir.verifier import verify_module

    program = parse(source)
    if if_convert:
        from .ifconvert import if_convert_program

        if_convert_program(program)
    if unroll_factor >= 2:
        from .unroll import UnrollConfig, unroll_program

        unroll_program(program, UnrollConfig(factor=unroll_factor))
    checker = check(program)
    module = Lowerer(program, checker, name).lower()
    verify_module(module)
    return module
