"""AST-level if-conversion.

Trimaran forms *hyperblocks*: predication converts small control-flow
diamonds into straight-line code so whole loop bodies become single
scheduling regions.  MiniC lowers to an unpredicated IR, so the
equivalent transform happens on the AST: an ``if``/``else`` whose
branches consist of scalar assignments (and branch-local declarations)
with *speculation-safe* right-hand sides is rewritten into
conditional-select assignments:

    if (c) { int t = a + b; x = t; } else { x = e; }
        -->
    { int __ifc = (c); int t__r = a + b; x = __ifc ? t__r : e; }

Speculation safety: both arms now evaluate unconditionally, so an RHS may
not load from a computed address (the branch may have guarded an
out-of-bounds index), may not divide (guarded divide-by-zero), and may
not call or allocate.  Within a branch an RHS may read branch-local
declarations (they execute unconditionally after conversion) but not
variables select-assigned earlier in the same branch — both arms must
see pre-branch values.  Branch-local declarations are alpha-renamed to
fresh names when hoisted so they cannot collide or shadow.

Run this *before* loop unrolling: converted bodies become straight-line
and therefore unrollable — the hyperblock-then-unroll pipeline of the
paper's infrastructure.
"""

from __future__ import annotations

import copy
import itertools
from typing import Dict, List, Optional, Set, Tuple

from . import ast

_counter = itertools.count()


class IfConvertConfig:
    """Limits keeping the transform to genuinely small diamonds."""

    def __init__(self, max_statements: int = 10):
        self.max_statements = max_statements


def if_convert_program(
    program: ast.Program, config: Optional[IfConvertConfig] = None
) -> int:
    """If-convert eligible diamonds in place; returns conversions done."""
    config = config or IfConvertConfig()
    count = 0
    for func in program.functions:
        total = 0
        # Iterate to a fixed point: converting an inner diamond can make
        # the enclosing one convertible.
        while True:
            done = _convert_block(func.body, config)
            total += done
            if done == 0:
                break
        count += total
    return count


def _convert_block(block: ast.Block, config: IfConvertConfig) -> int:
    count = 0
    for i, stmt in enumerate(list(block.stmts)):
        count += _convert_stmt(stmt, config)
        if isinstance(stmt, ast.If):
            replacement = _try_convert(stmt, config)
            if replacement is not None:
                block.stmts[i] = replacement
                count += 1
    return count


def _convert_stmt(stmt: ast.Stmt, config: IfConvertConfig) -> int:
    count = 0
    if isinstance(stmt, ast.Block):
        count += _convert_block(stmt, config)
    elif isinstance(stmt, ast.If):
        count += _convert_stmt(stmt.then, config)
        if stmt.orelse is not None:
            count += _convert_stmt(stmt.orelse, config)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        count += _convert_stmt(stmt.body, config)
    elif isinstance(stmt, ast.For):
        count += _convert_stmt(stmt.body, config)
    return count


class _Branch:
    """Analysed branch: hoistable declarations + select assignments."""

    def __init__(self):
        self.stmts: List[ast.Stmt] = []  # decls and local assigns, in order
        self.selects: Dict[str, ast.Expr] = {}  # outer var -> new value
        self.order: List[str] = []
        self.declared: Set[str] = set()


def _try_convert(stmt: ast.If, config: IfConvertConfig) -> Optional[ast.Stmt]:
    if not _is_safe(stmt.cond, allow_loads=True):
        return None
    then_branch = _analyse_branch(stmt.then, config)
    if then_branch is None:
        return None
    else_branch = _Branch()
    if stmt.orelse is not None:
        maybe = _analyse_branch(stmt.orelse, config)
        if maybe is None:
            return None
        else_branch = maybe
    if not then_branch.selects and not else_branch.selects:
        return None
    if then_branch.declared & else_branch.declared:
        return None  # same-named locals in both arms: renamed apart anyway,
        # but keep the analysis simple by rejecting

    loc = stmt.loc
    cond_var = f"__ifc{next(_counter)}"
    out: List[ast.Stmt] = [
        ast.VarDecl(
            loc, ast.TypeSpec(loc, "int", 0), cond_var, copy.deepcopy(stmt.cond)
        )
    ]
    out.extend(then_branch.stmts)
    out.extend(else_branch.stmts)

    ordered = list(then_branch.order)
    ordered += [n for n in else_branch.order if n not in then_branch.selects]
    for name in ordered:
        then_val = then_branch.selects.get(name)
        else_val = else_branch.selects.get(name)
        if_true = then_val if then_val is not None else ast.Ident(loc, name)
        if_false = else_val if else_val is not None else ast.Ident(loc, name)
        select = ast.Ternary(loc, ast.Ident(loc, cond_var), if_true, if_false)
        out.append(
            ast.ExprStmt(loc, ast.Assign(loc, ast.Ident(loc, name), select))
        )
    return ast.Block(loc, out)


def _analyse_branch(stmt: ast.Stmt, config: IfConvertConfig) -> Optional[_Branch]:
    stmts = _flatten(stmt)
    if stmts is None or len(stmts) > config.max_statements:
        return None
    branch = _Branch()
    rename: Dict[str, str] = {}
    assigned: Set[str] = set()
    for s in stmts:
        if isinstance(s, ast.VarDecl):
            if s.type_spec.pointer_depth or s.type_spec.base not in ("int", "float"):
                return None
            init = s.init
            if init is not None:
                if not _is_safe(init, allow_loads=False):
                    return None
                if _reads_any(init, assigned):
                    return None
                init = _renamed(init, rename)
            fresh = f"{s.name}__r{next(_counter)}"
            branch.declared.add(s.name)
            rename[s.name] = fresh
            branch.stmts.append(
                ast.VarDecl(s.loc, s.type_spec, fresh, init)
            )
        elif isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Assign):
            assign = s.expr
            if not isinstance(assign.target, ast.Ident):
                return None
            if not _is_safe(assign.value, allow_loads=False):
                return None
            if _reads_any(assign.value, assigned):
                return None
            value = _renamed(assign.value, rename)
            name = assign.target.name
            if name in branch.declared:
                # Assignment to a branch-local: executes unconditionally.
                branch.stmts.append(
                    ast.ExprStmt(
                        s.loc,
                        ast.Assign(s.loc, ast.Ident(s.loc, rename[name]), value),
                    )
                )
            else:
                if name in assigned:
                    return None
                assigned.add(name)
                branch.selects[name] = value
                branch.order.append(name)
        else:
            return None
    return branch


def _flatten(stmt: ast.Stmt) -> Optional[List[ast.Stmt]]:
    """Flatten (nested) blocks to a statement list; None on other shapes."""
    if isinstance(stmt, ast.Block):
        result: List[ast.Stmt] = []
        for s in stmt.stmts:
            if isinstance(s, ast.Block):
                inner = _flatten(s)
                if inner is None:
                    return None
                result.extend(inner)
            else:
                result.append(s)
        return result
    return [stmt]


def _is_safe(expr: ast.Expr, allow_loads: bool) -> bool:
    """No side effects and no faults under unconditional evaluation."""
    if isinstance(expr, (ast.Call, ast.Malloc, ast.Assign)):
        return False
    if isinstance(expr, ast.Binary) and expr.op in ("/", "%"):
        return False
    if not allow_loads and isinstance(expr, (ast.Index, ast.Field)):
        return False
    if not allow_loads and isinstance(expr, ast.Unary) and expr.op == "*":
        return False
    return all(_is_safe(child, allow_loads) for child in _expr_children(expr))


def _reads_any(expr: ast.Expr, names: Set[str]) -> bool:
    if isinstance(expr, ast.Ident) and expr.name in names:
        return True
    return any(_reads_any(child, names) for child in _expr_children(expr))


def _renamed(expr: ast.Expr, mapping: Dict[str, str]) -> ast.Expr:
    """Deep copy with identifier substitution (alpha-renaming)."""
    clone = copy.deepcopy(expr)
    _rename_in_place(clone, mapping)
    return clone


def _rename_in_place(expr: ast.Expr, mapping: Dict[str, str]) -> None:
    if isinstance(expr, ast.Ident) and expr.name in mapping:
        expr.name = mapping[expr.name]
    for child in _expr_children(expr):
        _rename_in_place(child, mapping)


def _expr_children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Field):
        return [expr.base]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Malloc):
        return [expr.size]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.if_true, expr.if_false]
    return []
