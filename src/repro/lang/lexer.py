"""Lexer for MiniC.

MiniC is the C subset the benchmark suite is written in: ``int``/``float``
scalars, pointers, global arrays, structs, ``malloc``, and the usual
statement forms.  The lexer produces a flat token list consumed by the
recursive-descent parser.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .errors import LexError, SourceLocation

KEYWORDS = {
    "int",
    "float",
    "void",
    "struct",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "malloc",
    "sizeof",
}

# Multi-character operators first so maximal munch works by ordered scan.
OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


class Token:
    """A lexical token: kind, text/value, and source location.

    Kinds: ``"kw"`` (keyword), ``"ident"``, ``"int"``, ``"float"``,
    ``"punct"`` and ``"eof"``.
    """

    __slots__ = ("kind", "value", "loc")

    def __init__(self, kind: str, value: Union[str, int, float], loc: SourceLocation):
        self.kind = kind
        self.value = value
        self.loc = loc

    def is_kw(self, word: str) -> bool:
        return self.kind == "kw" and self.value == word

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.value == text

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, {self.loc})"


class Lexer:
    """Single-pass scanner producing a list of tokens."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start : self.pos]
            if len(text) == 2:
                raise LexError("malformed hex literal", loc)
            return Token("int", int(text, 16), loc)
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if is_float:
            return Token("float", float(text), loc)
        return Token("int", int(text), loc)

    def _lex_word(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token("kw", text, loc)
        return Token("ident", text, loc)

    def tokens(self) -> List[Token]:
        """Scan the entire source and return tokens ending with EOF."""
        result: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                result.append(Token("eof", "", self._loc()))
                return result
            ch = self._peek()
            if ch.isdigit():
                result.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                result.append(self._lex_word())
            else:
                loc = self._loc()
                for opr in OPERATORS:
                    if self.source.startswith(opr, self.pos):
                        self._advance(len(opr))
                        result.append(Token("punct", opr, loc))
                        break
                else:
                    raise LexError(f"unexpected character {ch!r}", loc)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
