"""MiniC frontend: lexer, parser, type checker, and lowering to IR.

The public entry point is :func:`compile_source`, which turns MiniC source
text into a verified :class:`repro.ir.Module`.
"""

from .errors import LexError, MiniCError, ParseError, SourceLocation, TypeCheckError
from .lexer import Lexer, Token, tokenize
from .lower import Lowerer, compile_source
from .parser import Parser, parse
from .sema import Checker, check

__all__ = [
    "LexError",
    "MiniCError",
    "ParseError",
    "SourceLocation",
    "TypeCheckError",
    "Lexer",
    "Token",
    "tokenize",
    "Lowerer",
    "compile_source",
    "Parser",
    "parse",
    "Checker",
    "check",
]
