"""Cross-phase partition/schedule validity checker.

Statically verifies the paper's pipeline invariants over GDP/RHOP/BUG and
scheme outputs:

* **Phase 1 (data):** every accessed object is homed exactly once on a
  real cluster; objects the access-pattern merge fused share one home;
  per-cluster data bytes stay within the configured imbalance cap and any
  finite scratchpad capacity.
* **Phase 2 (computation):** every locked memory operation sits on its
  object's home cluster, and partitioners report locks that are
  infeasible for the machine's resource tables.
* **Move insertion:** every cut DFG edge is accounted for by an explicit
  intercluster move; ``ICMOVE`` endpoints agree with the assignment.
* **Schedule:** every operation has a cluster with a function unit that
  can execute it, and the final list schedule respects dependence,
  intercluster-move latency, FU, and bus-bandwidth lower bounds.

All findings are :class:`Diagnostic` values tagged with the pipeline
phase that caused them, so a mispartitioned run reads as a located lint
report instead of a silently wrong cycle count.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.objects import ObjectTable
from ..ir import Module, Opcode, Operation
from ..machine import Machine
from ..partition.locks import memory_locks
from ..partition.merges import MergeResult
from ..partition.rhop import RHOPResult
from ..schedule.depgraph import DependenceGraph
from ..schedule.listsched import ListScheduler
from .diagnostics import DiagnosticReport, Severity, register_rule

register_rule("object-home-missing", "accessed object has no home cluster")
register_rule("object-home-range", "object homed on a nonexistent cluster")
register_rule(
    "object-home-conflict", "merged objects homed on different clusters"
)
register_rule(
    "size-imbalance", "data partition exceeds the size-balance bound"
)
register_rule(
    "memory-capacity", "cluster memory capacity exceeded by homed objects"
)
register_rule(
    "lock-violation", "memory op placed off its object's home cluster"
)
register_rule(
    "infeasible-lock", "memory lock names a nonexistent cluster"
)
register_rule("unassigned-op", "operation missing from the assignment")
register_rule(
    "assignment-range", "operation assigned to a nonexistent cluster"
)
register_rule(
    "infeasible-resources",
    "block demands more slots than one cluster issues",
)
register_rule("useless-icmove", "intercluster move with no consumer")
register_rule(
    "icmove-mismatch", "intercluster move source/destination disagree"
)
register_rule(
    "icmove-bad-source", "intercluster move reads an unavailable value"
)
register_rule(
    "cut-edge-unmoved",
    "value crosses clusters with no intercluster move",
)
register_rule("schedule-failure", "list scheduler failed on a block")
register_rule(
    "schedule-infeasible", "schedule violates machine issue limits"
)


def _op_locations(module: Module) -> Dict[int, Tuple[str, str, Operation]]:
    """Op uid -> (function name, block name, operation)."""
    index: Dict[int, Tuple[str, str, Operation]] = {}
    for func in module:
        for block in func:
            for op in block.ops:
                index[op.uid] = (func.name, block.name, op)
    return index


# -- phase 1: data partition ---------------------------------------------------------


def check_data_partition(
    objects: ObjectTable,
    object_home: Dict[str, int],
    machine: Machine,
    size_imbalance: Optional[float] = None,
    merge: Optional[MergeResult] = None,
    phase: str = "gdp",
) -> DiagnosticReport:
    """Verify the phase-1 contract: one home per object, merged groups
    co-located, and data bytes balanced/capacity-feasible."""
    report = DiagnosticReport()
    k = machine.num_clusters

    for obj_id in objects.accessed_ids():
        if obj_id not in object_home:
            report.error(
                "object-home-missing",
                f"accessed object {obj_id} has no home cluster",
                phase=phase,
                hint="every accessed object must be homed exactly once; "
                "its memory operations cannot be locked",
            )
    for obj_id, cluster in sorted(object_home.items()):
        if not (0 <= cluster < k):
            report.error(
                "object-home-range",
                f"object {obj_id} homed on cluster {cluster}, but the "
                f"machine has clusters 0..{k - 1}",
                phase=phase,
            )

    if merge is not None:
        for group in merge.object_groups():
            homes = {
                object_home[o]
                for o in group.object_ids
                if o in object_home
            }
            if len(homes) > 1:
                objs = ", ".join(sorted(group.object_ids))
                report.error(
                    "object-home-conflict",
                    f"merged objects {{{objs}}} are homed on clusters "
                    f"{sorted(homes)} — effectively homed twice",
                    phase=phase,
                    hint="the access-pattern merge made these objects one "
                    "atomic placement unit; split homes force transfers "
                    "the estimator never modelled",
                )

    loads = [0.0] * k
    for obj_id, cluster in object_home.items():
        if obj_id in objects and 0 <= cluster < k:
            loads[cluster] += objects[obj_id].size

    if size_imbalance is not None and k > 1:
        total = float(objects.total_size())
        cap = size_imbalance * total / k
        largest = _largest_atom_bytes(objects, merge)
        for cluster, used in enumerate(loads):
            if used > cap + largest:
                report.error(
                    "size-imbalance",
                    f"cluster {cluster} holds {used:.0f} data bytes, over "
                    f"the {size_imbalance:.2f}x cap ({cap:.0f}) even after "
                    f"granting one atomic group ({largest:.0f} bytes) of "
                    "slack",
                    phase=phase,
                )
            elif used > cap:
                report.warning(
                    "size-imbalance",
                    f"cluster {cluster} holds {used:.0f} data bytes, above "
                    f"the {size_imbalance:.2f}x cap ({cap:.0f})",
                    phase=phase,
                    hint="an oversized atomic group can force this; raise "
                    "the imbalance knob if intended",
                )

    for cluster, config in enumerate(machine.clusters):
        if config.memory_bytes is not None and loads[cluster] > config.memory_bytes:
            report.error(
                "memory-capacity",
                f"cluster {cluster} homes {loads[cluster]:.0f} data bytes "
                f"but its scratchpad holds only {config.memory_bytes}",
                phase=phase,
            )
    return report


def _largest_atom_bytes(
    objects: ObjectTable, merge: Optional[MergeResult]
) -> float:
    """Bytes of the largest unsplittable placement unit."""
    if merge is not None:
        sizes = [
            objects.size_of(g.object_ids) for g in merge.object_groups()
        ]
        if sizes:
            return float(max(sizes))
    return float(max((o.size for o in objects), default=0))


# -- phase 2: computation locks ------------------------------------------------------


def check_memory_locks(
    module: Module,
    assignment: Dict[int, int],
    object_home: Dict[str, int],
    access_counts: Optional[Dict[str, int]] = None,
    phase: str = "rhop",
) -> DiagnosticReport:
    """Verify the phase-2 contract: every memory operation is placed on
    its object's home cluster (Section 3.4's hard lock)."""
    report = DiagnosticReport()
    expected = memory_locks(module, object_home, access_counts)
    locations = _op_locations(module)
    for uid, cluster in sorted(expected.items()):
        placed = assignment.get(uid)
        if placed is None:
            continue  # coverage is checked by check_moves
        if placed != cluster:
            func, block, op = locations[uid]
            objs = ",".join(sorted(op.mem_objects()))
            report.error(
                "lock-violation",
                f"memory operation placed on cluster {placed} but its "
                f"object(s) {{{objs}}} are homed on cluster {cluster}",
                func=func, block=block, op=str(op), phase=phase,
                hint="the computation partitioner must honour memory "
                "locks; a remote access has no hardware path",
            )
    return report


def diagnose_lock_violations(
    result: RHOPResult, module: Module
) -> DiagnosticReport:
    """Convert a partitioner's recorded infeasible-lock reports into
    diagnostics attributed to the phase (``rhop`` or ``bug``) that hit
    them."""
    report = DiagnosticReport()
    locations = _op_locations(module)
    for func_name, uid, cluster in result.lock_violations:
        loc = locations.get(uid)
        op_text = str(loc[2]) if loc else None
        block = loc[1] if loc else None
        report.error(
            "infeasible-lock",
            f"memory operation locked to cluster {cluster}, which has no "
            "unit of its function-unit class",
            func=func_name, block=block, op=op_text, phase=result.phase,
            hint="the data partition homed an object on a cluster whose "
            "resource table cannot execute its accesses",
        )
    return report


# -- move insertion and resources ----------------------------------------------------


def check_moves(
    module: Module,
    assignment: Dict[int, int],
    machine: Machine,
    phase: str = "moves",
) -> DiagnosticReport:
    """Verify move insertion and per-cluster resource feasibility: every
    cut def-use edge is bridged by a copy, ICMOVE endpoints agree with the
    assignment, and every op's cluster owns a unit that can execute it."""
    report = DiagnosticReport()
    for func in module:
        defs_clusters: Dict[int, set] = {}
        for op in func.operations():
            if op.dest is not None and op.uid in assignment:
                defs_clusters.setdefault(op.dest.vid, set()).add(
                    assignment[op.uid]
                )
        param_vids = {p.vid for p in func.params}

        for block in func:
            for op in block.ops:
                if op.uid not in assignment:
                    report.error(
                        "unassigned-op",
                        "operation has no cluster assignment",
                        func=func.name, block=block.name, op=str(op),
                        phase=phase,
                        hint="the scheduler would crash on this block",
                    )
                    continue
                cluster = assignment[op.uid]
                if not (0 <= cluster < machine.num_clusters):
                    report.error(
                        "assignment-range",
                        f"operation assigned to cluster {cluster}, but the "
                        f"machine has clusters 0..{machine.num_clusters - 1}",
                        func=func.name, block=block.name, op=str(op),
                        phase=phase,
                    )
                    continue
                cls = machine.fu_class_of(op)
                if cls is not None and machine.units(cluster, cls) == 0:
                    report.error(
                        "infeasible-resources",
                        f"operation needs a {cls.value} unit but cluster "
                        f"{cluster} has none",
                        func=func.name, block=block.name, op=str(op),
                        phase=phase,
                        hint="no list schedule exists for this block on "
                        "this machine",
                    )
                if op.is_icmove():
                    _check_icmove(
                        report, func.name, block.name, op, cluster,
                        defs_clusters, param_vids, phase,
                    )
                    continue  # an ICMOVE is itself the bridge for its src
                for src in op.register_srcs():
                    sources = defs_clusters.get(src.vid)
                    if not sources or src.vid in param_vids:
                        continue  # params arrive externally; defs checked
                    if cluster not in sources:
                        report.error(
                            "cut-edge-unmoved",
                            f"value {src} is defined on cluster(s) "
                            f"{sorted(sources)} but consumed on cluster "
                            f"{cluster} with no intercluster move",
                            func=func.name, block=block.name, op=str(op),
                            phase=phase,
                            hint="insert_intercluster_moves must place an "
                            "ICMOVE (or local copy) for this flow",
                        )
    return report


def _check_icmove(
    report: DiagnosticReport,
    func: str,
    block: str,
    op: Operation,
    cluster: int,
    defs_clusters: Dict[int, set],
    param_vids: set,
    phase: str,
) -> None:
    src_cluster = op.attrs.get("from")
    dst_cluster = op.attrs.get("to")
    if src_cluster == dst_cluster:
        report.warning(
            "useless-icmove",
            f"intercluster move from cluster {src_cluster} to itself",
            func=func, block=block, op=str(op), phase=phase,
            hint="a same-cluster move should be a plain MOV; it wrongly "
            "pays bus latency and bandwidth",
        )
    if dst_cluster is not None and cluster != dst_cluster:
        report.error(
            "icmove-mismatch",
            f"ICMOVE annotated to={dst_cluster} but assigned to cluster "
            f"{cluster}",
            func=func, block=block, op=str(op), phase=phase,
        )
    if src_cluster is not None:
        for src in op.register_srcs():
            sources = defs_clusters.get(src.vid)
            if src.vid in param_vids or not sources:
                continue
            if src_cluster not in sources:
                report.error(
                    "icmove-bad-source",
                    f"ICMOVE claims its value comes from cluster "
                    f"{src_cluster} but {src} is defined on "
                    f"{sorted(sources)}",
                    func=func, block=block, op=str(op), phase=phase,
                )


# -- final schedule ------------------------------------------------------------------


def check_schedule(
    module: Module,
    assignment: Dict[int, int],
    machine: Machine,
    phase: str = "schedule",
) -> DiagnosticReport:
    """Re-schedule every block and verify the result against the three
    lower bounds no valid schedule may beat: the dependence critical path
    (which prices intercluster-move latency), per-(cluster, FU-class)
    issue slots, and intercluster bus bandwidth."""
    report = DiagnosticReport()
    scheduler = ListScheduler(machine)
    for func in module:
        for block in func:
            if not block.ops:
                continue
            if any(op.uid not in assignment for op in block.ops):
                continue  # reported as unassigned-op by check_moves
            graph = DependenceGraph(block, machine.latency_of)
            try:
                sched = scheduler.schedule_block(block, assignment, graph)
            except RuntimeError as exc:
                report.error(
                    "schedule-failure",
                    f"list scheduler could not converge: {exc}",
                    func=func.name, block=block.name, phase=phase,
                    hint="usually an operation assigned to a cluster with "
                    "zero units of its FU class",
                )
                continue
            bound, reason = _schedule_lower_bound(
                block, assignment, machine, graph
            )
            if sched.length < bound:
                report.error(
                    "schedule-infeasible",
                    f"block schedule of {sched.length} cycles beats the "
                    f"{reason} lower bound of {bound} cycles",
                    func=func.name, block=block.name, phase=phase,
                    hint="the cycle model is reporting impossible "
                    "numbers; distrust this evaluation",
                )
    return report


def _schedule_lower_bound(
    block: object,
    assignment: Dict[int, int],
    machine: Machine,
    graph: DependenceGraph,
) -> Tuple[int, str]:
    bound = graph.critical_path_length()
    reason = "dependence critical-path"

    usage: Dict[Tuple[int, object], int] = {}
    moves = 0
    for op in graph.ops:
        if op.opcode is Opcode.ICMOVE:
            moves += 1
            continue
        cls = machine.fu_class_of(op)
        if cls is None:
            continue
        key = (assignment[op.uid], cls)
        usage[key] = usage.get(key, 0) + 1
    for (cluster, cls), count in usage.items():
        units = machine.units(cluster, cls)
        if units <= 0:
            continue  # infeasible-resources already reported
        fu_bound = math.ceil(count / units)
        if fu_bound > bound:
            bound, reason = fu_bound, f"cluster {cluster} {cls.value}-unit"
    if moves:
        bus_bound = math.ceil(moves / machine.network.bandwidth)
        if bus_bound > bound:
            bound, reason = bus_bound, "intercluster bus bandwidth"
    return bound, reason


# -- whole-outcome entry point -------------------------------------------------------

#: Per-scheme validity contracts: (balance cap source, merge-group check).
_SCHEME_CONTRACTS = {
    "gdp": ("gdp", True),
    "profilemax": ("profile-max homing", True),
    "naive": ("naive post-pass homing", False),
    "unified": (None, False),
}


def check_scheme_outcome(
    prepared: "object",
    outcome: "object",
    size_imbalance: Optional[float] = None,
    schedule: bool = True,
) -> DiagnosticReport:
    """Check a full :class:`SchemeOutcome` against every invariant that
    applies to its scheme.

    ``prepared`` supplies the object table / merge / access counts;
    ``outcome`` supplies machine, module, assignment, and object homes.
    ``size_imbalance`` overrides the scheme's default balance cap.
    """
    report = DiagnosticReport()
    scheme = getattr(outcome, "scheme", "?")
    data_phase, check_groups = _SCHEME_CONTRACTS.get(scheme, (scheme, False))

    if outcome.object_home is not None and data_phase is not None:
        cap = size_imbalance
        if cap is None and scheme == "gdp":
            from ..partition.gdp import GDPConfig

            cap = GDPConfig().size_imbalance
        elif cap is None and scheme == "profilemax":
            cap = 1.15
        report.extend(
            check_data_partition(
                prepared.objects,
                outcome.object_home,
                outcome.machine,
                size_imbalance=cap,
                merge=prepared.merge if check_groups else None,
                phase=data_phase,
            )
        )
        report.extend(
            check_memory_locks(
                outcome.module,
                outcome.assignment,
                outcome.object_home,
                prepared.object_access_counts(),
                phase="rhop",
            )
        )
    report.extend(check_moves(outcome.module, outcome.assignment, outcome.machine))
    if schedule:
        report.extend(
            check_schedule(outcome.module, outcome.assignment, outcome.machine)
        )
    return report
