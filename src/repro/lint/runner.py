"""The lint driver: pass registry, shared analysis context, and runner.

A lint pass is a small class with a ``name``, a ``description``, and a
``run(ctx)`` generator yielding :class:`Diagnostic` values.  Passes share
one :class:`LintContext` per module so the underlying analyses (CFG,
def-use, liveness, points-to, object table) are computed at most once
regardless of how many passes consume them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Type

from ..analysis.cfg import CFG
from ..analysis.dataflow import IntervalAnalysis, LivenessFacts
from ..analysis.dataflow import live_registers, must_defined_registers
from ..analysis.defuse import DefUse
from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..analysis.objects import ObjectTable
from ..analysis.pointsto import PointsToResult, solve_pointsto
from ..ir import Function, Module
from ..machine import Machine
from .diagnostics import Diagnostic, DiagnosticReport


class LintContext:
    """Per-module analysis cache handed to every lint pass.

    ``profile`` is an optional :class:`repro.profiler.ProfileData`
    gathered by interpreting *this very module instance* — the refinement
    differ uses it as a dynamic under-approximation oracle (op uids must
    match, so a profile of any other module copy would be meaningless).
    """

    def __init__(
        self,
        module: Module,
        machine: Optional[Machine] = None,
        profile=None,
    ):
        self.module = module
        self.machine = machine
        self.profile = profile
        self._cfg: Dict[str, CFG] = {}
        self._dom: Dict[str, DominatorTree] = {}
        self._defuse: Dict[str, DefUse] = {}
        self._loops: Dict[str, LoopInfo] = {}
        self._live_facts: Dict[str, LivenessFacts] = {}
        self._must_defined: Dict[str, Dict[str, set]] = {}
        self._pointsto: Dict[str, PointsToResult] = {}
        self._objects: Optional[ObjectTable] = None
        self._intervals: Optional[IntervalAnalysis] = None
        self._static_profile = None
        self._execution_bounds = None
        self._access_regions: Dict[str, object] = {}
        self._modref: Dict[str, object] = {}

    def cfg(self, func: Function) -> CFG:
        if func.name not in self._cfg:
            self._cfg[func.name] = CFG(func)
        return self._cfg[func.name]

    def dominators(self, func: Function) -> DominatorTree:
        if func.name not in self._dom:
            self._dom[func.name] = DominatorTree(self.cfg(func))
        return self._dom[func.name]

    def defuse(self, func: Function) -> DefUse:
        if func.name not in self._defuse:
            self._defuse[func.name] = DefUse(func, self.cfg(func))
        return self._defuse[func.name]

    def loops(self, func: Function) -> LoopInfo:
        if func.name not in self._loops:
            self._loops[func.name] = LoopInfo(
                self.cfg(func), self.dominators(func)
            )
        return self._loops[func.name]

    def live_facts(self, func: Function) -> LivenessFacts:
        """Register liveness solved on the generic dataflow engine."""
        if func.name not in self._live_facts:
            self._live_facts[func.name] = live_registers(
                func, self.cfg(func)
            )
        return self._live_facts[func.name]

    def must_defined(self, func: Function) -> Dict[str, set]:
        """Block name -> registers defined on *every* path to its entry."""
        if func.name not in self._must_defined:
            self._must_defined[func.name] = must_defined_registers(
                func, self.cfg(func)
            )
        return self._must_defined[func.name]

    def intervals(self) -> IntervalAnalysis:
        """Module-wide interprocedural value-range analysis."""
        if self._intervals is None:
            self._intervals = IntervalAnalysis(self.module)
        return self._intervals

    def pointsto(self, tier: str = "andersen") -> PointsToResult:
        if tier not in self._pointsto:
            self._pointsto[tier] = solve_pointsto(self.module, tier)
        return self._pointsto[tier]

    def static_profile(self):
        """Abstract-interpretation access profile (sound static bounds)."""
        if self._static_profile is None:
            from ..analysis.dataflow.staticprofile import (
                build_static_profile,
            )

            self._static_profile = build_static_profile(
                self.module, pointsto=self.pointsto()
            )
        return self._static_profile

    def execution_bounds(self):
        """Whole-program block execution bounds (shared across tiers —
        the interval fixpoint under the coarsest tier contains every
        sharper tier's, so one solve serves all region analyses)."""
        if self._execution_bounds is None:
            from ..analysis.dataflow.regions import ExecutionBounds

            self._execution_bounds = ExecutionBounds(
                self.module, pointsto=self.pointsto()
            )
        return self._execution_bounds

    def access_regions(self, tier: str = "andersen"):
        """Per-op static byte regions under one points-to tier."""
        if tier not in self._access_regions:
            from ..analysis.dataflow.regions import AccessRegionAnalysis

            self._access_regions[tier] = AccessRegionAnalysis(
                self.module,
                pointsto=self.pointsto(tier),
                bounds=self.execution_bounds(),
            )
        return self._access_regions[tier]

    def modref(self, tier: str = "andersen"):
        """Interprocedural region-level MOD/REF summaries under one
        points-to tier, computed once per context across all passes."""
        if tier not in self._modref:
            from ..analysis.modref import ModRefAnalysis

            self._modref[tier] = ModRefAnalysis(
                self.module,
                pointsto=self.pointsto(tier),
                regions=self.access_regions(tier),
            )
        return self._modref[tier]

    def objects(self) -> ObjectTable:
        if self._objects is None:
            self._objects = ObjectTable(self.module)
        return self._objects


class LintPass:
    """Base class for lint passes.  Subclasses set ``name`` (the rule-id
    prefix shown in reports) and implement :meth:`run`."""

    name: str = ""
    description: str = ""

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<lint pass {self.name}>"


#: All registered pass classes, keyed by pass name, in registration order.
PASS_REGISTRY: Dict[str, Type[LintPass]] = {}


def register_pass(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator adding a pass to the default registry."""
    if not cls.name:
        raise ValueError(f"lint pass {cls.__name__} needs a non-empty name")
    if cls.name in PASS_REGISTRY:
        raise ValueError(f"duplicate lint pass name {cls.name!r}")
    PASS_REGISTRY[cls.name] = cls
    return cls


def default_passes() -> List[LintPass]:
    """One instance of every registered pass, in registration order."""
    return [cls() for cls in PASS_REGISTRY.values()]


class LintRunner:
    """Runs a configurable set of lint passes over a module.

    >>> runner = LintRunner()                    # all registered passes
    >>> runner = LintRunner(only=["dead-code"])  # a chosen subset
    """

    def __init__(
        self,
        passes: Optional[Iterable[LintPass]] = None,
        only: Optional[Iterable[str]] = None,
        machine: Optional[Machine] = None,
        profile=None,
    ):
        if passes is not None:
            self.passes = list(passes)
        elif only is not None:
            wanted = list(only)
            unknown = [n for n in wanted if n not in PASS_REGISTRY]
            if unknown:
                raise ValueError(
                    f"unknown lint pass(es) {unknown}; "
                    f"available: {sorted(PASS_REGISTRY)}"
                )
            self.passes = [PASS_REGISTRY[n]() for n in wanted]
        else:
            self.passes = default_passes()
        self.machine = machine
        self.profile = profile

    def register(self, lint_pass: LintPass) -> "LintRunner":
        self.passes.append(lint_pass)
        return self

    def run(
        self, module: Module, ctx: Optional[LintContext] = None
    ) -> DiagnosticReport:
        if ctx is None:
            ctx = LintContext(module, self.machine, profile=self.profile)
        report = DiagnosticReport()
        for lint_pass in self.passes:
            report.diagnostics.extend(lint_pass.run(ctx))
        return report


def lint_module(
    module: Module,
    machine: Optional[Machine] = None,
    only: Optional[Iterable[str]] = None,
    profile=None,
) -> DiagnosticReport:
    """Run the default (or a named subset of) lint passes over ``module``."""
    return LintRunner(only=only, machine=machine, profile=profile).run(module)


def lint_with_stats(
    module: Module,
    machine: Optional[Machine] = None,
    only: Optional[Iterable[str]] = None,
    profile=None,
):
    """Like :func:`lint_module`, but also return the :class:`LintContext`.

    Callers wanting post-run facts (points-to precision stats, interval
    envs, the static profile) read them off the returned context instead
    of re-solving the analyses the passes already paid for.
    """
    runner = LintRunner(only=only, machine=machine, profile=profile)
    ctx = LintContext(module, machine, profile=profile)
    report = runner.run(module, ctx)
    return report, ctx
