"""IR-level lint passes built on the existing dataflow analyses.

Rules
-----
``ir-verify``            structural verifier findings surfaced as diagnostics
``unreachable-block``    blocks no path from the entry reaches (CFG/dominators)
``dead-store``           a definition overwritten before any use (def-use)
``never-read-def``       a register defined but never read anywhere
``uninitialized-read``   a use no definition reaches on any path (error)
``maybe-uninitialized``  a use some path reaches without a definition
``unused-global``        a module global no operation ever references
``const-condition``      a CBR whose outcome the value-range analysis fixes
``pointsto-unknown``     a memory access whose target set is empty
``pointsto-imprecise``   a memory access that may touch every data object
``pointsto-tier-delta``  a sharper points-to tier shrinks some target sets
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from ..ir import GlobalAddress, Opcode, Operation
from ..ir.verifier import module_errors
from .diagnostics import Diagnostic, Severity, register_rule
from .runner import LintContext, LintPass, register_pass

register_rule(
    "const-condition",
    "branch condition proven constant by value-range analysis",
)
register_rule("ir-verify", "structural IR invariant violated")
register_rule("unreachable-block", "basic block unreachable from entry")
register_rule("dead-store", "stored value can never be observed")
register_rule("never-read-def", "defined register is never read")
register_rule(
    "uninitialized-read", "register read before any definition on all paths"
)
register_rule(
    "maybe-uninitialized",
    "register read before definition on some path",
)
register_rule("unused-global", "global object is never accessed")
register_rule(
    "pointsto-unknown", "memory access resolves to no data object"
)
register_rule(
    "pointsto-imprecise",
    "memory access may touch many objects under the solved tier",
)
register_rule(
    "pointsto-tier-delta",
    "a sharper points-to tier would shrink this access's object set",
)


def _diag(
    severity: Severity,
    rule: str,
    message: str,
    func: Optional[str] = None,
    block: Optional[str] = None,
    op: Optional[Operation] = None,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        severity, rule, message,
        func=func, block=block,
        op=str(op) if op is not None else None,
        hint=hint,
    )


@register_pass
class VerifierPass(LintPass):
    """Bridge the structural IR verifier into the diagnostics framework."""

    name = "verify"
    description = "structural IR invariants (arity, terminators, symbols)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for message in module_errors(ctx.module):
            func, block, text = _split_location(message)
            yield _diag(
                Severity.ERROR, "ir-verify", text, func=func, block=block,
                hint="fix the IR producer; this module cannot be partitioned",
            )


def _split_location(message: str) -> "tuple[Optional[str], Optional[str], str]":
    """Verifier messages look like ``func/block: text`` or ``func: text``."""
    head, sep, tail = message.partition(": ")
    if not sep or " " in head:
        return None, None, message
    func, slash, block = head.partition("/")
    return func, (block if slash else None), tail


@register_pass
class UnreachableBlockPass(LintPass):
    """Blocks the entry cannot reach (CFG traversal + dominator tree)."""

    name = "unreachable"
    description = "blocks with no path from the function entry"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.module:
            if not func.blocks:
                continue
            reachable = ctx.cfg(func).reachable()
            # The dominator tree is computed over exactly the reachable
            # blocks; agreement between the two is itself an invariant.
            dominated = set(ctx.dominators(func).idom)
            for name in func.blocks:
                if name not in reachable or name not in dominated:
                    yield _diag(
                        Severity.WARNING, "unreachable-block",
                        "block is unreachable from the entry",
                        func=func.name, block=name,
                        hint="remove it or reconnect it; unreachable code "
                        "skews the static frequency estimates",
                    )


@register_pass
class DeadCodePass(LintPass):
    """Definitions that are never consumed (reaching-defs + liveness)."""

    name = "dead-code"
    description = "dead stores and never-read register definitions"

    #: Opcodes whose definition may be intentionally unused (side effects).
    _SIDE_EFFECTS = {Opcode.CALL}

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.module:
            if not func.blocks:
                continue
            defuse = ctx.defuse(func)
            liveness = ctx.live_facts(func)
            read_vids: Set[int] = set()
            for op in func.operations():
                for src in op.register_srcs():
                    read_vids.add(src.vid)
            for block in func:
                for op in block.ops:
                    if op.dest is None or op.opcode in self._SIDE_EFFECTS:
                        continue
                    if defuse.uses_of.get(op.uid):
                        continue
                    vid = op.dest.vid
                    if vid not in read_vids:
                        yield _diag(
                            Severity.WARNING, "never-read-def",
                            f"register {op.dest} is defined but never read",
                            func=func.name, block=block.name, op=op,
                            hint="delete the operation (dead code)",
                        )
                    elif not liveness.live_across(vid) or _killed_locally(
                        block, op, vid
                    ):
                        yield _diag(
                            Severity.WARNING, "dead-store",
                            f"definition of {op.dest} is overwritten "
                            "before any use",
                            func=func.name, block=block.name, op=op,
                            hint="delete the operation or reorder the defs",
                        )


def _killed_locally(block: object, op: Operation, vid: int) -> bool:
    """True when a later op in the same block redefines ``vid``."""
    seen = False
    for other in getattr(block, "ops", []):
        if other is op:
            seen = True
            continue
        if seen and other.dest is not None and other.dest.vid == vid:
            return True
    return False


@register_pass
class UninitializedReadPass(LintPass):
    """Reads of registers with no (or only partial) reaching definitions.

    A read that *no* definition reaches on any path is an error — the
    interpreter and every estimator would consume garbage.  A read that
    some path reaches without a definition (must-reach analysis) is a
    warning; the frontend zero-fills locals so these are usually latent
    bugs rather than miscompiles.
    """

    name = "uninit"
    description = "uninitialized / maybe-uninitialized register reads"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for func in ctx.module:
            if not func.blocks:
                continue
            defuse = ctx.defuse(func)
            must_in = ctx.must_defined(func)
            reachable = ctx.cfg(func).reachable()
            for block in func:
                if block.name not in reachable:
                    continue
                current = set(must_in[block.name])
                for op in block.ops:
                    for src in op.register_srcs():
                        reaching = defuse.defs_for.get((op.uid, src.vid), [])
                        if not reaching:
                            yield _diag(
                                Severity.ERROR, "uninitialized-read",
                                f"read of {src} which no definition reaches",
                                func=func.name, block=block.name, op=op,
                                hint="define the register on every path "
                                "before this use",
                            )
                        elif src.vid not in current:
                            yield _diag(
                                Severity.WARNING, "maybe-uninitialized",
                                f"read of {src} which some path reaches "
                                "without a definition",
                                func=func.name, block=block.name, op=op,
                                hint="initialise the register on the "
                                "missing path(s)",
                            )
                    if op.dest is not None:
                        current.add(op.dest.vid)


@register_pass
class UnusedGlobalPass(LintPass):
    """Module globals no operation ever takes the address of."""

    name = "globals"
    description = "globals never referenced by any operation"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        referenced: Set[str] = set()
        for func in ctx.module:
            for op in func.operations():
                for src in op.srcs:
                    if isinstance(src, GlobalAddress):
                        referenced.add(src.symbol)
        for name in ctx.module.globals:
            if name not in referenced:
                yield Diagnostic(
                    Severity.WARNING, "unused-global",
                    f"global @{name} is never referenced",
                    hint="drop it; unused globals still consume scratchpad "
                    "bytes in the data-partition balance",
                )


@register_pass
class ConstantConditionPass(LintPass):
    """Conditional branches the value-range analysis proves one-sided.

    The interprocedural interval analysis evaluates every reachable CBR
    condition; when the interval excludes zero (always taken) or is the
    constant zero (never taken), one successor edge is dead.  Dead edges
    inflate the static frequency estimates and can hide real code behind
    a branch that can never fire.
    """

    name = "constcond"
    description = "provably constant branch conditions (dead branch edges)"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        intervals = ctx.intervals()
        for func in ctx.module:
            if not func.blocks:
                continue
            for block, cbr, cond, taken in intervals.constant_conditions(
                func.name
            ):
                dead = [t for t in cbr.targets if t != taken]
                if not dead:
                    continue
                outcome = (
                    "never true" if cond.is_const() and cond.lo == 0
                    else f"always true (condition in {cond})"
                )
                yield _diag(
                    Severity.WARNING, "const-condition",
                    f"branch condition is {outcome}; edge to "
                    f"{dead[0]} is never taken",
                    func=func.name, block=block.name, op=cbr,
                    hint="fold the branch or delete the dead successor; "
                    "dead edges skew the static frequency estimates",
                )


@register_pass
class PointsToPrecisionPass(LintPass):
    """Points-to precision warnings on memory accesses.

    An empty target set means the analysis lost the address entirely; a
    target set equal to the whole object table means the access-pattern
    merge will collapse every object into one unpartitionable group.
    """

    name = "pointsto"
    description = "empty or may-touch-everything memory target sets"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from ..analysis.pointsto import TIERS

        pts = ctx.pointsto()
        table = ctx.objects()
        total = len(table)
        for func in ctx.module:
            for block in func:
                for op in block.ops:
                    if not op.is_memory_access():
                        continue
                    objs = pts.objects_for_op(func.name, op)
                    if not objs:
                        yield _diag(
                            Severity.WARNING, "pointsto-unknown",
                            "memory access with an empty points-to set",
                            func=func.name, block=block.name, op=op,
                            hint="the address flows from outside the "
                            "tracked pointer graph; partitioning treats "
                            "this access as unlocked",
                        )
                    elif total >= 2 and len(objs) == total:
                        yield _diag(
                            Severity.WARNING, "pointsto-imprecise",
                            f"memory access may touch all {total} data "
                            "objects",
                            func=func.name, block=block.name, op=op,
                            hint="the access-pattern merge will fuse every "
                            "object into one group, defeating GDP",
                        )
        # Per-tier precision deltas: how many per-op target sets each
        # sharper tier shrinks relative to the baseline, and by how much.
        # Reported only when a tier actually wins, so clean programs (and
        # programs where precision is already maxed out) stay silent.
        base_sets = {}
        for func in ctx.module:
            for op in func.operations():
                if op.is_memory_access():
                    base_sets[(func.name, op.uid)] = pts.objects_for_op(
                        func.name, op
                    )
        for tier in TIERS[1:]:
            sharp = ctx.pointsto(tier)
            shrunk = 0
            dropped = 0
            for func in ctx.module:
                for op in func.operations():
                    if not op.is_memory_access():
                        continue
                    objs = sharp.objects_for_op(func.name, op)
                    base = base_sets[(func.name, op.uid)]
                    if len(objs) < len(base):
                        shrunk += 1
                        dropped += len(base) - len(objs)
            if shrunk:
                yield Diagnostic(
                    Severity.INFO, "pointsto-tier-delta",
                    f"tier {tier!r} shrinks {shrunk} memory-op target "
                    f"set(s), dropping {dropped} spurious target(s) vs "
                    f"tier 'andersen'",
                    hint=f"partition with --pointsto {tier} to use the "
                    "sharper sets",
                    phase="pointsto",
                )
