"""Pluggable static-analysis layer: IR lint passes, structural-verifier
bridge, and the cross-phase partition/schedule validity checker.

Programmatic API::

    from repro.lint import lint_module, check_scheme_outcome

    report = lint_module(module)          # IR-level rules
    if report.has_errors:
        print(report.render_text())

CLI: ``repro lint program.mc`` / ``repro partition --verify-partition``.
"""

from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    PartitionValidityError,
    Severity,
)
from .runner import (
    PASS_REGISTRY,
    LintContext,
    LintPass,
    LintRunner,
    default_passes,
    lint_module,
    lint_with_stats,
    register_pass,
)
from . import irlint  # noqa: F401  (imports register the default passes)
from .ptdiff import (
    DETERMINISTIC_COLUMNS,
    RefinementDifferPass,
    diff_tiers,
    precision_table,
    tier_solutions,
)
from .staticdiff import (
    StaticDriftPass,
    diff_static_dynamic,
    drift_summary,
)
from .partcheck import (
    check_data_partition,
    check_memory_locks,
    check_moves,
    check_schedule,
    check_scheme_outcome,
    diagnose_lock_violations,
)
from .regioncheck import (
    RegionInterferencePass,
    check_region_outcome,
    diff_region_tiers,
    region_summary,
    splittable_advisories,
)

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "PartitionValidityError",
    "Severity",
    "LintContext",
    "LintPass",
    "LintRunner",
    "PASS_REGISTRY",
    "default_passes",
    "lint_module",
    "lint_with_stats",
    "register_pass",
    "DETERMINISTIC_COLUMNS",
    "RefinementDifferPass",
    "diff_tiers",
    "precision_table",
    "tier_solutions",
    "StaticDriftPass",
    "diff_static_dynamic",
    "drift_summary",
    "check_data_partition",
    "check_memory_locks",
    "check_moves",
    "check_schedule",
    "check_scheme_outcome",
    "diagnose_lock_violations",
    "RegionInterferencePass",
    "check_region_outcome",
    "diff_region_tiers",
    "region_summary",
    "splittable_advisories",
]
