"""Refinement-soundness differ for the tiered points-to analyses.

Each sharper points-to tier must be a *refinement* of the tier below: for
every memory operation, ``pts_cs(op) ⊆ pts_field(op) ⊆ pts_andersen(op)``.
A violation means one of the solvers dropped a target it must keep — a
bug that would silently corrupt the access-pattern merges and memory
locks downstream.  This differ turns such bugs into located
:class:`Diagnostic` errors.

Two oracles:

* **static subset** — solve every tier and compare per-op target sets
  along the lattice (``ptdiff-subset``);
* **dynamic under-approximation** — the profiler interpreter records the
  object actually touched by every executed load/store
  (:attr:`ProfileData.op_object_counts`); every observed object must be
  contained in *every* tier's static set (``ptdiff-oracle``).  The
  profile must come from interpreting the same module instance, since
  the check joins on operation uids.

:func:`precision_table` renders the per-tier stats with only
fixpoint-deterministic columns (set sizes, singleton ratio, may-alias
pairs) so golden tests stay stable across hash seeds.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from ..analysis.pointsto import TIERS, PointsToResult, solve_pointsto
from ..ir import Module
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    register_rule,
)
from .runner import LintContext, LintPass, register_pass

register_rule(
    "ptdiff-subset",
    "sharper points-to tier claims objects the coarser tier does not",
)
register_rule(
    "ptdiff-oracle",
    "dynamic profile observed an object the static tier never claims",
)


def tier_solutions(
    module: Module, tiers: Sequence[str] = TIERS
) -> Dict[str, PointsToResult]:
    """Solve every requested tier over ``module``."""
    return {tier: solve_pointsto(module, tier) for tier in tiers}


def _diff_iter(
    module: Module,
    solutions: Dict[str, PointsToResult],
    tiers: Sequence[str],
    profile=None,
) -> Iterator[Diagnostic]:
    for func in module:
        for block in func:
            for op in block.ops:
                if not op.is_memory_access():
                    continue
                sets = {
                    t: solutions[t].objects_for_op(func.name, op) for t in tiers
                }
                for coarse, fine in zip(tiers, tiers[1:]):
                    extra = sets[fine] - sets[coarse]
                    if extra:
                        yield Diagnostic(
                            Severity.ERROR, "ptdiff-subset",
                            f"tier {fine!r} is not a refinement of "
                            f"{coarse!r}: targets {sorted(extra)} appear "
                            f"only in the sharper tier",
                            func=func.name, block=block.name, op=str(op),
                            hint="a sharper solver may only *drop* "
                            "spurious targets, never invent new ones",
                            phase="pointsto",
                        )
                if profile is None:
                    continue
                counts = profile.op_object_counts.get(op.uid)
                if not counts:
                    continue
                observed = set(counts)
                for tier in tiers:
                    missed = observed - sets[tier]
                    if missed:
                        yield Diagnostic(
                            Severity.ERROR, "ptdiff-oracle",
                            f"tier {tier!r} misses dynamically observed "
                            f"target(s) {sorted(missed)}",
                            func=func.name, block=block.name, op=str(op),
                            hint="the static set must over-approximate "
                            "every object the interpreter touched here",
                            phase="pointsto",
                        )


def diff_tiers(
    module: Module,
    tiers: Sequence[str] = TIERS,
    solutions: Optional[Dict[str, PointsToResult]] = None,
    profile=None,
) -> DiagnosticReport:
    """Run the refinement differ; the returned report carries the per-tier
    precision stats in :attr:`DiagnosticReport.stats`."""
    sols = solutions or tier_solutions(module, tiers)
    report = DiagnosticReport(_diff_iter(module, sols, tiers, profile))
    for tier in tiers:
        report.stats[tier] = sols[tier].stats().to_dict()
    return report


#: Stat columns that are functions of the solved fixpoint alone (no wall
#: clock, no iteration order) — the only ones safe for golden files.
DETERMINISTIC_COLUMNS = (
    "memory_ops",
    "annotated_ops",
    "empty_ops",
    "avg_set_size",
    "max_set_size",
    "singleton_ratio",
    "mayalias_pairs",
)


def precision_table(
    module: Module,
    tiers: Sequence[str] = TIERS,
    solutions: Optional[Dict[str, PointsToResult]] = None,
) -> str:
    """Deterministic per-tier precision table (one row per tier)."""
    sols = solutions or tier_solutions(module, tiers)
    header = ("tier",) + DETERMINISTIC_COLUMNS
    rows = [header]
    for tier in tiers:
        stats = sols[tier].stats().to_dict()
        rows.append((tier,) + tuple(str(stats[c]) for c in DETERMINISTIC_COLUMNS))
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for n, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@register_pass
class RefinementDifferPass(LintPass):
    """Check ``pts_cs ⊆ pts_field ⊆ pts_andersen`` per memory op, plus the
    dynamic oracle when the lint context carries a profile."""

    name = "ptdiff"
    description = "refinement soundness across points-to precision tiers"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        solutions = {tier: ctx.pointsto(tier) for tier in TIERS}
        yield from _diff_iter(ctx.module, solutions, TIERS, ctx.profile)
