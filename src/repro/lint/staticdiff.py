"""Static-vs-dynamic drift differ for the access-region analysis.

The abstract-interpretation profile (:mod:`repro.analysis.dataflow.staticprofile`)
claims *sound upper bounds*: every block bound must dominate the measured
execution count, every memory op's weight bound must dominate the number
of accesses the interpreter recorded, and every static byte region must
contain the dynamically touched envelope.  A violation is not imprecision
— it is unsoundness in the dataflow stack (trip counts, execution bounds,
or the affine region math), and it would silently corrupt any partition
derived with ``--profile static``.  This differ turns such bugs into
located :class:`Diagnostic` errors.

Rules
-----
``staticdiff-block``   a block ran more often than its static bound
``staticdiff-weight``  a memory op accessed more often than its bound
``staticdiff-region``  a dynamic byte envelope escapes the static region
``staticdiff-drift``   (note) a finite bound far above the observed count

The drift notes are telemetry, not errors: they locate where the static
analysis is sound but loose, which is exactly the per-op data the
EXPERIMENTS.md drift table aggregates.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir import Module, Operation
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    register_rule,
)
from .runner import LintContext, LintPass, register_pass

register_rule(
    "staticdiff-block",
    "block execution count exceeds its static bound",
)
register_rule(
    "staticdiff-weight",
    "memory-op access count exceeds its static weight bound",
)
register_rule(
    "staticdiff-region",
    "dynamic byte envelope escapes the static access region",
)
register_rule(
    "staticdiff-drift",
    "static bound sound but far above the observed count",
)

#: A finite weight bound this many times (and this far) above the
#: observed count earns a ``staticdiff-drift`` note.
DRIFT_FACTOR = 64
DRIFT_SLACK = 1024


def _op_index(module: Module) -> Dict[int, Tuple[str, str, Operation]]:
    """uid -> (function, block, op) for diagnostic locations."""
    index: Dict[int, Tuple[str, str, Operation]] = {}
    for func in module:
        for block in func:
            for op in block.ops:
                index[op.uid] = (func.name, block.name, op)
    return index


def _fmt_bound(bound: float) -> str:
    return "inf" if math.isinf(bound) else str(int(bound))


def _diff_iter(
    module: Module, dynamic, static
) -> Iterator[Diagnostic]:
    ops = _op_index(module)

    for (func, block), count in sorted(dynamic.block_counts.items()):
        bound = static.block_bounds.get((func, block))
        if bound is None:
            yield Diagnostic(
                Severity.ERROR, "staticdiff-block",
                f"block executed {count} time(s) but the static analysis "
                "assigned it no bound",
                func=func, block=block,
                hint="the execution-bound analysis believed this block "
                "unreachable; its reachability model is unsound",
                phase="staticdiff",
            )
        elif count > bound:
            yield Diagnostic(
                Severity.ERROR, "staticdiff-block",
                f"block executed {count} time(s), exceeding the static "
                f"bound {_fmt_bound(bound)}",
                func=func, block=block,
                hint="a trip-count or call-bound derivation "
                "under-approximated; static bounds must dominate "
                "every run",
                phase="staticdiff",
            )

    for uid in sorted(dynamic.op_object_counts):
        counts = dynamic.op_object_counts[uid]
        observed = sum(counts.values())
        if observed <= 0:
            continue
        func, block, op = ops.get(uid, (None, None, None))
        bound = static.op_weight_bounds.get(uid)
        if bound is None:
            yield Diagnostic(
                Severity.ERROR, "staticdiff-weight",
                f"memory op accessed {observed} time(s) but has no "
                "static weight bound",
                func=func, block=block,
                op=str(op) if op is not None else None,
                hint="the region analysis skipped an op the interpreter "
                "executed",
                phase="staticdiff",
            )
        elif observed > bound:
            yield Diagnostic(
                Severity.ERROR, "staticdiff-weight",
                f"memory op accessed {observed} time(s), exceeding the "
                f"static weight bound {_fmt_bound(bound)}",
                func=func, block=block,
                op=str(op) if op is not None else None,
                hint="the op's block bound under-approximated its "
                "execution count",
                phase="staticdiff",
            )
        elif (
            not math.isinf(bound)
            and bound >= observed * DRIFT_FACTOR
            and bound - observed >= DRIFT_SLACK
        ):
            yield Diagnostic(
                Severity.INFO, "staticdiff-drift",
                f"static weight bound {_fmt_bound(bound)} is "
                f"{int(bound // observed)}x the observed count {observed}",
                func=func, block=block,
                op=str(op) if op is not None else None,
                hint="sound but loose; a sharper trip-count derivation "
                "would tighten the static partition weights",
                phase="staticdiff",
            )

    for uid in sorted(dynamic.op_object_regions):
        func, block, op = ops.get(uid, (None, None, None))
        claimed = static.static_regions.get(uid, {})
        for obj in sorted(dynamic.op_object_regions[uid]):
            lo, hi = dynamic.op_object_regions[uid][obj]
            if obj not in claimed:
                yield Diagnostic(
                    Severity.ERROR, "staticdiff-region",
                    f"op touched bytes [{lo}, {hi}) of {obj} but the "
                    "static analysis never claimed that object here",
                    func=func, block=block,
                    op=str(op) if op is not None else None,
                    hint="the points-to set feeding the region analysis "
                    "missed a dynamically observed target",
                    phase="staticdiff",
                )
                continue
            region = claimed[obj]
            if region is None:
                continue  # whole-object claim contains everything
            slo, shi = region
            if lo < slo or hi > shi:
                yield Diagnostic(
                    Severity.ERROR, "staticdiff-region",
                    f"op touched bytes [{lo}, {hi}) of {obj}, escaping "
                    f"the static region [{slo}, {shi})",
                    func=func, block=block,
                    op=str(op) if op is not None else None,
                    hint="the affine address form or the live-in "
                    "intervals under-approximated the offset range",
                    phase="staticdiff",
                )


def diff_static_dynamic(
    module: Module, dynamic, static=None
) -> DiagnosticReport:
    """Check every static bound against a measured profile of ``module``.

    ``dynamic`` must come from interpreting *this module instance* (the
    comparison joins on op uids).  ``static`` defaults to building a
    fresh :class:`~repro.analysis.dataflow.staticprofile.StaticProfile`
    over an Andersen points-to solution (without one, the region
    analysis only sees ops that already carry ``mem_objects``
    annotations and would falsely claim nothing).
    """
    if static is None:
        from ..analysis.dataflow.staticprofile import build_static_profile
        from ..analysis.pointsto import solve_pointsto

        static = build_static_profile(module, pointsto=solve_pointsto(module))
    report = DiagnosticReport(_diff_iter(module, dynamic, static))
    report.stats["staticdiff"] = drift_summary(module, dynamic, static)
    return report


def drift_summary(module: Module, dynamic, static) -> Dict[str, object]:
    """Deterministic aggregate of how tight the static bounds are.

    The violation counters should be zero on any sound build; the ratio
    columns quantify the cost of staying static (EXPERIMENTS.md).
    """
    ratios: List[float] = []
    finite = 0
    compared = 0
    for uid, counts in dynamic.op_object_counts.items():
        observed = sum(counts.values())
        bound = static.op_weight_bounds.get(uid)
        if observed <= 0 or bound is None:
            continue
        compared += 1
        if not math.isinf(bound):
            finite += 1
            ratios.append(bound / observed)
    violations = sum(
        1 for d in _diff_iter(module, dynamic, static)
        if d.severity is Severity.ERROR
    )
    ratios.sort()
    median: Optional[float] = None
    if ratios:
        mid = len(ratios) // 2
        median = (
            ratios[mid]
            if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2
        )
    return {
        "ops_compared": compared,
        "ops_finite_bound": finite,
        "blocks_measured": len(dynamic.block_counts),
        "blocks_bounded": sum(
            1
            for key, bound in static.block_bounds.items()
            if key in dynamic.block_counts and not math.isinf(bound)
        ),
        "violations": violations,
        "median_weight_ratio": (
            round(median, 2) if median is not None else None
        ),
    }


@register_pass
class StaticDriftPass(LintPass):
    """Assert the static profile's bounds contain the dynamic profile.

    Silent without a dynamic profile on the context (``repro lint
    --dynamic-oracle`` provides one); a static profile is never checked
    against itself.
    """

    name = "staticdiff"
    description = "static access bounds must contain the dynamic profile"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.profile is None or ctx.profile.is_static():
            return
        yield from _diff_iter(ctx.module, ctx.profile, ctx.static_profile())
