"""Structured diagnostics for the static-analysis layer.

Every check in :mod:`repro.lint` — IR lint passes, the structural
verifier bridge, and the partition validity checker — reports findings as
:class:`Diagnostic` values instead of raising ad-hoc exceptions.  A
diagnostic carries a severity, a stable rule id, an IR location
(function / block / operation), the phase of the pipeline that the
finding is attributed to, and an optional fix hint.  Reports render as
human-readable text or as deterministic JSON for golden tests and CI.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; ordered ``ERROR < WARNING < INFO`` by rank."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.ERROR: 0,
    Severity.WARNING: 1,
    Severity.INFO: 2,
}

#: SARIF result levels for each severity.
_SARIF_LEVEL: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


#: Optional SARIF ``shortDescription`` text per rule id.  Only rules
#: registered here get metadata in the SARIF rules array; unregistered
#: rules keep the bare ``{"id": ...}`` form so historical golden logs
#: stay byte-identical.
RULE_METADATA: Dict[str, str] = {}


def register_rule(rule: str, short_description: str) -> None:
    """Attach SARIF ``shortDescription`` metadata to a rule id."""
    RULE_METADATA[rule] = short_description


def _render_stat(value: Any) -> str:
    if isinstance(value, dict):
        return "  ".join(f"{k}={value[k]}" for k in sorted(value))
    return str(value)


class Diagnostic:
    """One finding: severity, rule id, location, message, and fix hint.

    ``op`` is the textual form of the operation (not the object) so that
    reports stay serialisable and stable after the module is mutated.
    ``phase`` attributes the finding to the pipeline phase that caused it
    (``"gdp"``, ``"rhop"``, ``"bug"``, ``"moves"``, ...).
    """

    __slots__ = ("severity", "rule", "message", "func", "block", "op", "hint", "phase")

    def __init__(
        self,
        severity: Severity,
        rule: str,
        message: str,
        func: Optional[str] = None,
        block: Optional[str] = None,
        op: Optional[str] = None,
        hint: Optional[str] = None,
        phase: Optional[str] = None,
    ):
        self.severity = severity
        self.rule = rule
        self.message = message
        self.func = func
        self.block = block
        self.op = op
        self.hint = hint
        self.phase = phase

    def location(self) -> str:
        """``func/block`` (whichever parts are known), or ``<module>``."""
        if self.func and self.block:
            return f"{self.func}/{self.block}"
        if self.func:
            return self.func
        return "<module>"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``None`` fields are omitted for stable goldens."""
        data: Dict[str, Any] = {
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
        }
        for key in ("func", "block", "op", "hint", "phase"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    def render(self) -> str:
        parts = [f"{self.severity.value}[{self.rule}] {self.location()}: {self.message}"]
        if self.op:
            parts.append(f"  | {self.op}")
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        if self.phase:
            parts[0] += f" (phase: {self.phase})"
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.severity.value}[{self.rule}] {self.location()}>"


class DiagnosticReport:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])
        #: Optional analysis observability payload rendered alongside the
        #: findings (e.g. per-tier points-to precision stats keyed by tier
        #: name).  Empty by default so existing renderings are unchanged.
        self.stats: Dict[str, Any] = {}

    # -- building ---------------------------------------------------------------

    def add(
        self,
        severity: Severity,
        rule: str,
        message: str,
        func: Optional[str] = None,
        block: Optional[str] = None,
        op: Optional[str] = None,
        hint: Optional[str] = None,
        phase: Optional[str] = None,
    ) -> Diagnostic:
        diag = Diagnostic(severity, rule, message, func, block, op, hint, phase)
        self.diagnostics.append(diag)
        return diag

    def error(self, rule: str, message: str, **kwargs: Optional[str]) -> Diagnostic:
        return self.add(Severity.ERROR, rule, message, **kwargs)

    def warning(self, rule: str, message: str, **kwargs: Optional[str]) -> Diagnostic:
        return self.add(Severity.WARNING, rule, message, **kwargs)

    def info(self, rule: str, message: str, **kwargs: Optional[str]) -> Diagnostic:
        return self.add(Severity.INFO, rule, message, **kwargs)

    def extend(self, other: "DiagnosticReport") -> "DiagnosticReport":
        self.diagnostics.extend(other.diagnostics)
        self.stats.update(other.stats)
        return self

    # -- queries ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rules_fired(self) -> List[str]:
        """Distinct rule ids in first-seen order."""
        seen: List[str] = []
        for d in self.diagnostics:
            if d.rule not in seen:
                seen.append(d.rule)
        return seen

    def summary(self) -> str:
        e, w = len(self.errors), len(self.warnings)
        i = len(self.diagnostics) - e - w
        return f"{e} error(s), {w} warning(s), {i} note(s)"

    # -- rendering --------------------------------------------------------------

    def sorted(self) -> "DiagnosticReport":
        """A copy ordered by severity, then location, then rule (stable)."""
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.location(), d.rule),
        )
        copy = DiagnosticReport(ordered)
        copy.stats = dict(self.stats)
        return copy

    def render_text(self) -> str:
        lines: List[str] = []
        if not self.diagnostics:
            lines.append("no diagnostics")
        else:
            lines.extend(d.render() for d in self.sorted())
            lines.append(self.summary())
        for key in sorted(self.stats):
            lines.append(f"stats[{key}]: {_render_stat(self.stats[key])}")
        return "\n".join(lines)

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON: diagnostics sorted as in the text report,
        dict keys sorted."""
        payload: Dict[str, Any] = {
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "total": len(self.diagnostics),
            },
        }
        if self.stats:
            payload["stats"] = self.stats
        return json.dumps(payload, indent=indent, sort_keys=True)

    def to_sarif(self, indent: int = 2) -> str:
        """Render as a minimal SARIF 2.1.0 log (one run, one result per
        diagnostic) for CI annotation tooling.

        IR locations have no source file, so each result carries its
        ``func/block`` location as a logicalLocation and the operation
        text, when known, in the message.
        """
        rules: List[Dict[str, Any]] = []
        for rule in sorted({d.rule for d in self.diagnostics}):
            entry: Dict[str, Any] = {"id": rule}
            if rule in RULE_METADATA:
                entry["shortDescription"] = {"text": RULE_METADATA[rule]}
            rules.append(entry)
        results: List[Dict[str, Any]] = []
        for d in self.sorted():
            message = d.message
            if d.op:
                message = f"{message} [{d.op}]"
            if d.hint:
                message = f"{message} (hint: {d.hint})"
            result: Dict[str, Any] = {
                "ruleId": d.rule,
                "level": _SARIF_LEVEL[d.severity],
                "message": {"text": message},
                "locations": [
                    {
                        "logicalLocations": [
                            {
                                "fullyQualifiedName": d.location(),
                                "kind": "function",
                            }
                        ]
                    }
                ],
            }
            if d.phase is not None:
                result["properties"] = {"phase": d.phase}
            results.append(result)
        log = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "https://example.invalid/repro",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(log, indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<report: {self.summary()}>"


class PartitionValidityError(Exception):
    """Raised by the opt-in pipeline validation hook when a phase output
    violates one of the paper's partition/schedule invariants."""

    def __init__(self, report: DiagnosticReport, phase: Optional[str] = None):
        self.report = report
        self.phase = phase
        where = f" after phase {phase!r}" if phase else ""
        super().__init__(
            f"partition validity check failed{where}:\n{report.render_text()}"
        )
