"""Region-granular partition interference checks.

:mod:`repro.lint.partcheck` verifies the paper's invariants at *object*
granularity: every object homed once, every memory op on its object's
home cluster, every cut register edge bridged by an ``ICMOVE``.  This
module re-states those contracts at *byte-region* granularity using the
interprocedural MOD/REF summaries (:mod:`repro.analysis.modref`) and the
static access-region analysis, which is exactly the precision a
sub-object partitioner needs to be trustworthy before it exists.

Rules
-----
``region-refinement``    (ERROR) a sharper points-to tier claims a byte
                         region outside the coarser tier's region for
                         the same (op, object) — the region analogue of
                         ``ptdiff-subset``, checked along the same
                         ``cs ⊆ field ⊆ andersen`` chain
``region-cross-cluster`` (ERROR) a memory op touches a byte region of an
                         object homed on a different cluster than the
                         op's assignment (the region-located form of the
                         Section 3.4 lock contract)
``region-interference``  (ERROR) overlapping byte regions of one object
                         are accessed from different clusters with at
                         least one write — regions the partition treats
                         as disjoint actually alias across the cut
``region-unbridged``     (ERROR) a value loaded from a byte region flows
                         to a consumer on another cluster with no
                         intercluster move bridging the cut edge
``region-splittable``    (INFO) an object's MOD/REF regions decompose
                         into ≥2 disjoint, never-co-accessed intervals —
                         the candidates a future sub-object partitioner
                         will split

The partition-dependent rules never fire on a valid outcome (they refine
contracts ``partcheck`` already enforces), so CI requires zero ERROR
findings across every bench × scheme × points-to tier.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.modref import (
    Effect,
    ModRefAnalysis,
    effect_contains,
    format_effect,
)
from ..analysis.pointsto import TIERS
from ..ir import Module, Opcode, Operation
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    register_rule,
)
from .runner import LintContext, LintPass, register_pass

register_rule(
    "region-refinement",
    "sharper points-to tier claims bytes outside the coarser tier's region",
)
register_rule(
    "region-cross-cluster",
    "byte region accessed from a cluster other than its object's home",
)
register_rule(
    "region-interference",
    "overlapping byte regions of one object accessed from different "
    "clusters with a write",
)
register_rule(
    "region-unbridged",
    "loaded byte region flows across clusters with no intercluster move",
)
register_rule(
    "region-splittable",
    "object regions decompose into disjoint never-co-accessed intervals",
)


def _as_effect(region: Optional[Tuple[int, int]]) -> Effect:
    return None if region is None else [region]


def _op_index(module: Module) -> Dict[int, Tuple[str, str, Operation]]:
    index: Dict[int, Tuple[str, str, Operation]] = {}
    for func in module:
        for block in func:
            for op in block.ops:
                index[op.uid] = (func.name, block.name, op)
    return index


def _regions_text(per_obj: Dict[str, Optional[Tuple[int, int]]]) -> str:
    parts = [
        f"{obj}:{format_effect(_as_effect(region))}"
        for obj, region in sorted(per_obj.items())
    ]
    return ", ".join(parts)


# -- tier refinement ----------------------------------------------------------


def diff_region_tiers(
    ctx: LintContext, tiers: Sequence[str] = TIERS
) -> Iterator[Diagnostic]:
    """Mirror the ptdiff subset chain at region granularity: for every
    (op, object) both tiers claim, the sharper tier's byte region must
    lie inside the coarser tier's."""
    index = _op_index(ctx.module)
    analyses = {tier: ctx.access_regions(tier) for tier in tiers}
    for coarse, fine in zip(tiers, tiers[1:]):
        coarse_regions = analyses[coarse].op_regions
        fine_regions = analyses[fine].op_regions
        for uid in sorted(fine_regions):
            per_fine = fine_regions[uid]
            per_coarse = coarse_regions.get(uid, {})
            for obj in sorted(per_fine):
                if obj not in per_coarse:
                    continue  # extra objects are ptdiff-subset's finding
                outer = _as_effect(per_coarse[obj])
                inner = _as_effect(per_fine[obj])
                if effect_contains(outer, inner):
                    continue
                func, block, op = index[uid]
                yield Diagnostic(
                    Severity.ERROR, "region-refinement",
                    f"tier {fine!r} claims bytes {format_effect(inner)} of "
                    f"{obj}, outside tier {coarse!r}'s region "
                    f"{format_effect(outer)}",
                    func=func, block=block, op=str(op),
                    hint="a sharper tier may only shrink the claimed "
                    "region, never extend it",
                    phase="regions",
                )


# -- splittability advisories -------------------------------------------------


def splittable_advisories(modref: ModRefAnalysis) -> Iterator[Diagnostic]:
    """INFO advisories naming the sub-object partitioning candidates."""
    for obj, components in sorted(modref.splittable_objects().items()):
        summary = modref.program_effects()
        written = format_effect(summary.mod_of(obj))
        yield Diagnostic(
            Severity.INFO, "region-splittable",
            f"object {obj} decomposes into {len(components)} disjoint "
            f"never-co-accessed regions "
            f"{format_effect(components)} (written: {written})",
            hint="a sub-object partitioner could home these intervals "
            "on different clusters without adding transfers",
            phase="regions",
        )


# -- partition-dependent checks -----------------------------------------------


def check_region_locks(
    module: Module,
    assignment: Dict[int, int],
    object_home: Dict[str, int],
    regions,
    access_counts: Optional[Dict[str, int]] = None,
    phase: str = "rhop",
) -> DiagnosticReport:
    """The Section 3.4 lock contract, located at byte regions: every
    memory op locked to an object home must sit on that cluster, and the
    diagnostic names the exact bytes the misplaced op touches."""
    from ..partition.locks import memory_locks

    report = DiagnosticReport()
    index = _op_index(module)
    expected = memory_locks(module, object_home, access_counts)
    for uid, home in sorted(expected.items()):
        placed = assignment.get(uid)
        if placed is None or placed == home:
            continue
        func, block, op = index[uid]
        per_obj = regions.op_regions.get(uid, {})
        report.error(
            "region-cross-cluster",
            f"bytes {_regions_text(per_obj) or '<unknown>'} are homed on "
            f"cluster {home} but accessed from cluster {placed}",
            func=func, block=block, op=str(op), phase=phase,
            hint="a remote sub-region access has no hardware path; the "
            "computation partitioner must honour the region's home",
        )
    return report


def check_region_interference(
    module: Module,
    assignment: Dict[int, int],
    object_home: Dict[str, int],
    regions,
    phase: str = "moves",
) -> DiagnosticReport:
    """Overlapping regions of one object must never be accessed from two
    clusters with a write on either side.

    Only operations whose *entire* may-touch object set shares a single
    home participate: those are provably locked to that home, so any
    cross-cluster overlap is a genuine interference bug rather than the
    multi-home ambiguity ``memory_locks`` resolves by access counts.
    """
    report = DiagnosticReport()
    index = _op_index(module)
    per_object: Dict[
        str, List[Tuple[int, int, bool, Optional[Tuple[int, int]]]]
    ] = {}
    for uid, per_obj in regions.op_regions.items():
        cluster = assignment.get(uid)
        if cluster is None:
            continue
        homes = {
            object_home[obj] for obj in per_obj if obj in object_home
        }
        if len(homes) != 1:
            continue
        op = index[uid][2]
        is_store = op.opcode is Opcode.STORE
        for obj, region in per_obj.items():
            per_object.setdefault(obj, []).append(
                (uid, cluster, is_store, region)
            )
    for obj in sorted(per_object):
        accesses = per_object[obj]
        clusters = {cluster for _, cluster, _, _ in accesses}
        if len(clusters) <= 1:
            continue
        for i, (uid_a, cl_a, store_a, reg_a) in enumerate(accesses):
            for uid_b, cl_b, store_b, reg_b in accesses[i + 1:]:
                if cl_a == cl_b or not (store_a or store_b):
                    continue
                if not _regions_alias(reg_a, reg_b):
                    continue
                func, block, op = index[uid_a]
                _, o_block, o_op = index[uid_b]
                report.error(
                    "region-interference",
                    f"bytes {format_effect(_as_effect(reg_a))} of {obj} "
                    f"on cluster {cl_a} alias bytes "
                    f"{format_effect(_as_effect(reg_b))} accessed from "
                    f"cluster {cl_b} (conflicting op in {o_block}: "
                    f"{o_op})",
                    func=func, block=block, op=str(op), phase=phase,
                    hint="regions split across clusters must be "
                    "provably disjoint; this pair shares bytes with a "
                    "write on one side",
                )
    return report


def _regions_alias(
    a: Optional[Tuple[int, int]], b: Optional[Tuple[int, int]]
) -> bool:
    if a is None or b is None:
        return True  # a whole-object claim overlaps everything
    return a[0] < b[1] and b[0] < a[1]


def check_region_moves(
    module: Module,
    assignment: Dict[int, int],
    regions,
    phase: str = "moves",
) -> DiagnosticReport:
    """Region-located form of the cut-edge contract: when a value loaded
    from a byte region is consumed on another cluster, an ``ICMOVE``
    must bridge the flow (mirrors ``check_moves``'s cut-edge rule, but
    names the region whose contents cross the cut unbridged)."""
    report = DiagnosticReport()
    for func in module:
        defs_clusters: Dict[int, set] = {}
        loads_by_vid: Dict[int, List[int]] = {}
        for op in func.operations():
            if op.dest is None or op.uid not in assignment:
                continue
            defs_clusters.setdefault(op.dest.vid, set()).add(
                assignment[op.uid]
            )
            if op.opcode is Opcode.LOAD:
                loads_by_vid.setdefault(op.dest.vid, []).append(op.uid)
        param_vids = {p.vid for p in func.params}
        for block in func:
            for op in block.ops:
                if op.uid not in assignment or op.is_icmove():
                    continue  # ICMOVEs are themselves the bridges
                cluster = assignment[op.uid]
                for src in op.register_srcs():
                    if src.vid in param_vids:
                        continue
                    sources = defs_clusters.get(src.vid)
                    if not sources or cluster in sources:
                        continue
                    for load_uid in loads_by_vid.get(src.vid, ()):
                        per_obj = regions.op_regions.get(load_uid, {})
                        report.error(
                            "region-unbridged",
                            f"value of bytes "
                            f"{_regions_text(per_obj) or '<unknown>'} "
                            f"loaded on cluster(s) {sorted(sources)} is "
                            f"consumed on cluster {cluster} with no "
                            "intercluster move",
                            func=func.name, block=block.name, op=str(op),
                            phase=phase,
                            hint="the loaded region's contents cross "
                            "the cluster cut; an ICMOVE must carry them",
                        )
    return report


# -- whole-outcome entry point ------------------------------------------------


def region_summary(modref: ModRefAnalysis) -> Dict[str, object]:
    """Deterministic aggregate for report footers and goldens."""
    effects = modref.program_effects()
    splittable = modref.splittable_objects()
    return {
        "objects_tracked": len(effects.objects()),
        "mod_objects": len(effects.mod),
        "ref_objects": len(effects.ref),
        "splittable_objects": len(splittable),
        "splittable_intervals": sum(
            len(parts) for parts in splittable.values()
        ),
        "widened_functions": len(modref.widened),
        "havoc_functions": sum(
            1 for s in modref.local.values() if s.havoc
        ),
    }


def check_region_outcome(
    prepared: "object",
    outcome: "object",
    regions=None,
    modref: Optional[ModRefAnalysis] = None,
) -> DiagnosticReport:
    """Check a full :class:`SchemeOutcome` against every region-granular
    invariant that applies to its scheme.

    The analyses run on ``outcome.module`` (the scheme's transformed
    clone — its op uids match the assignment) driven by the module's
    ``mem_objects`` annotations, which carry whichever points-to tier
    ``prepared`` was built with; running the checker over outcomes
    prepared at each tier covers the whole refinement chain.
    """
    from ..analysis.dataflow.regions import AccessRegionAnalysis

    module = outcome.module
    if regions is None:
        regions = AccessRegionAnalysis(module)
    if modref is None:
        modref = ModRefAnalysis(module, regions=regions)
    report = DiagnosticReport()
    if outcome.object_home is not None:
        report.extend(
            check_region_locks(
                module, outcome.assignment, outcome.object_home, regions,
                prepared.object_access_counts(),
            )
        )
        report.extend(
            check_region_interference(
                module, outcome.assignment, outcome.object_home, regions
            )
        )
    report.extend(check_region_moves(module, outcome.assignment, regions))
    report.stats["regioncheck"] = region_summary(modref)
    return report


# -- the registered lint pass -------------------------------------------------


@register_pass
class RegionInterferencePass(LintPass):
    """Partition-independent region checks: the cross-tier refinement
    chain plus ``region-splittable`` advisories.  The partition-dependent
    rules live in :func:`check_region_outcome` (``--verify-partition``
    and the ``regioncheck`` CI stage)."""

    name = "regioncheck"
    description = "region-level MOD/REF refinement and splittability"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        yield from diff_region_tiers(ctx)
        yield from splittable_advisories(ctx.modref())
