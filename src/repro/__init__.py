"""repro: compiler-directed data partitioning for multicluster processors.

A from-scratch reproduction of Chu & Mahlke, *Compiler-directed Data
Partitioning for Multicluster Processors* (CGO 2006): a MiniC compiler
frontend, whole-program analyses, a profiling interpreter, a clustered-VLIW
machine model and list scheduler, a multilevel graph partitioner, and the
paper's Global Data Partitioning algorithm with its evaluation baselines.

Typical use::

    from repro import compile_source
    from repro.machine import two_cluster_machine
    from repro.pipeline import Pipeline

    module = compile_source(MINIC_SOURCE)
    machine = two_cluster_machine(move_latency=5)
    result = Pipeline(machine).run(module, scheme="gdp")
    print(result.cycles)
"""

__version__ = "1.0.0"

from .exec.runconfig import RunConfig
from .ir import Module, verify_module
from .lang import compile_source

__all__ = [
    "Module", "RunConfig", "verify_module", "compile_source", "__version__",
]
