"""A tour of the compiler substrate underneath the partitioner.

Walks one small program through every stage: parsing, type checking,
hyperblock-style if-conversion, loop unrolling, lowering to IR, points-to
analysis, profiling, and per-block dependence/scheduling info.

Run:  python examples/minic_tour.py
"""

from repro.analysis import annotate_memory_ops
from repro.ir import print_module
from repro.lang import compile_source
from repro.lang.ifconvert import if_convert_program
from repro.lang.parser import parse
from repro.lang.unroll import unroll_program
from repro.machine import two_cluster_machine
from repro.profiler import Interpreter
from repro.schedule import DependenceGraph, ListScheduler

SOURCE = """
int lut[16] = {0, 1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 66, 78, 91, 105, 120};
int data[64];
int out[64];

int main() {
  int i;
  int seed = 5;
  for (i = 0; i < 64; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    data[i] = (seed >> 20) & 15;
  }
  int total = 0;
  for (i = 0; i < 64; i = i + 1) {
    int v = lut[data[i]];
    if (v > 60) { v = 60; }
    out[i] = v;
    total = total + v;
  }
  print_int(total);
  return total;
}
"""


def main() -> None:
    # -- frontend stages, one at a time ------------------------------------
    program = parse(SOURCE)
    converted = if_convert_program(program)
    unrolled = unroll_program(program)
    print(f"if-converted {converted} diamond(s), unrolled {unrolled} loop(s)")

    # -- compile both ways and compare shape --------------------------------
    plain = compile_source(SOURCE, "plain")
    optimized = compile_source(SOURCE, "optimized", unroll_factor=4,
                               if_convert=True)
    plain_max = max(len(b) for f in plain for b in f)
    opt_max = max(len(b) for f in optimized for b in f)
    print(f"largest block: {plain_max} ops plain -> {opt_max} ops optimized")

    # -- the IR itself -------------------------------------------------------
    print("\nIR of the plain module (truncated):")
    text = print_module(plain)
    print("\n".join(text.splitlines()[:28]))
    print("  ...")

    # -- analyses ------------------------------------------------------------
    annotate_memory_ops(optimized)
    print("\nannotated memory operations of the hot loop:")
    shown = 0
    for op in optimized.function("main").operations():
        if op.is_memory_access() and op.mem_objects() and shown < 6:
            print(f"  {op}")
            shown += 1

    # -- execution + profile ---------------------------------------------------
    interp = Interpreter(optimized)
    result = interp.run()
    print(f"\nexecuted: result={result}, output={interp.profile.output}")
    hot = interp.profile.block_counts.most_common(3)
    print(f"hottest blocks: {hot}")

    # -- scheduling one block ---------------------------------------------------
    machine = two_cluster_machine(move_latency=5)
    func = optimized.function("main")
    block = max(func, key=len)
    graph = DependenceGraph(block, machine.latency_of)
    print(
        f"\nhot block {block.name}: {len(block)} ops, "
        f"critical path {graph.critical_path_length()} cycles"
    )
    all_on_zero = {op.uid: 0 for op in block.ops}
    sched = ListScheduler(machine).schedule_block(block, all_on_zero, graph)
    print(f"single-cluster schedule: {sched.length} cycles")


if __name__ == "__main__":
    main()
