"""Custom machine models: scaling clusters and sweeping move latency.

Shows the machine-description API: the paper's 2-cluster preset, a
4-cluster scale-up, a heterogeneous 2-cluster machine, and a wider
intercluster bus — and how GDP behaves on each.

Run:  python examples/custom_machine.py
"""

from repro.bench import get
from repro.evalmodel import format_table
from repro.machine import (
    ClusterConfig,
    FUClass,
    InterclusterNetwork,
    Machine,
    four_cluster_machine,
    heterogeneous_machine,
    two_cluster_machine,
)
from repro.pipeline import Pipeline, PreparedProgram


def wide_bus_machine(move_latency: int = 5) -> Machine:
    """A hand-built machine: 2 beefy clusters and a 2-moves/cycle bus."""
    cluster = ClusterConfig(
        {FUClass.INT: 3, FUClass.FLOAT: 1, FUClass.MEM: 2, FUClass.BRANCH: 1},
        name="wide",
    )
    return Machine(
        [cluster, cluster], InterclusterNetwork(move_latency, bandwidth=2)
    )


def main() -> None:
    bench = get("mpeg2enc")
    prepared = PreparedProgram.from_source(bench.source, bench.name)
    print(f"benchmark: {bench.name} ({bench.description})\n")

    machines = {
        "paper 2-cluster": two_cluster_machine(move_latency=5),
        "4-cluster": four_cluster_machine(move_latency=5),
        "heterogeneous": heterogeneous_machine(move_latency=5),
        "wide bus": wide_bus_machine(move_latency=5),
    }

    rows = []
    for label, machine in machines.items():
        pipe = Pipeline(machine)
        unified = pipe.run(prepared, "unified")
        gdp = pipe.run(prepared, "gdp")
        rows.append(
            [
                label,
                machine.num_clusters,
                f"{unified.cycles:.0f}",
                f"{gdp.cycles:.0f}",
                f"{unified.cycles / gdp.cycles:.3f}",
            ]
        )
    print(
        format_table(
            ["machine", "clusters", "unified cycles", "GDP cycles", "GDP rel"],
            rows,
        )
    )

    # Latency sweep on the paper's machine (the Fig. 7 -> 8b progression).
    print("\nmove-latency sweep (GDP relative to unified):")
    sweep_rows = []
    for latency in (1, 2, 5, 10, 15):
        pipe = Pipeline(two_cluster_machine(move_latency=latency))
        rel = pipe.compare(prepared, schemes=("gdp",))
        sweep_rows.append([latency, f"{rel['gdp']:.3f}"])
    print(format_table(["latency", "GDP vs unified"], sweep_rows))


if __name__ == "__main__":
    main()
