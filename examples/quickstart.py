"""Quickstart: partition a small program for a 2-cluster VLIW.

Compiles a MiniC kernel, profiles it, runs the paper's four schemes
(unified / GDP / Profile Max / naive), and prints the relative
performance — a one-benchmark slice of Figure 8.

Run:  python examples/quickstart.py
"""

from repro.evalmodel import format_table
from repro.machine import two_cluster_machine
from repro.pipeline import Pipeline, PreparedProgram

SOURCE = """
int coeffs[32] = {3, -9, 14, -21, 30, -41, 55, -70, 86, -101, 115, -126,
                  134, -138, 139, 560, 560, 139, -138, 134, -126, 115,
                  -101, 86, -70, 55, -41, 30, -21, 14, -9, 3};
int history[32];
int input[256];
int output[256];

int filter_step(int sample) {
  int i;
  for (i = 31; i > 0; i = i - 1) { history[i] = history[i - 1]; }
  history[0] = sample;
  int acc = 0;
  for (i = 0; i < 32; i = i + 1) { acc = acc + coeffs[i] * history[i]; }
  return acc >> 10;
}

int main() {
  int i;
  int seed = 1;
  for (i = 0; i < 256; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    input[i] = (seed >> 18) & 2047;
  }
  int check = 0;
  for (i = 0; i < 256; i = i + 1) {
    output[i] = filter_step(input[i]);
    check = (check + output[i]) & 16777215;
  }
  print_int(check);
  return check;
}
"""


def main() -> None:
    # 1. Compile (with if-conversion + unrolling) and profile.
    prepared = PreparedProgram.from_source(SOURCE, "quickstart")
    print(f"compiled: {prepared.module.op_count()} IR operations")
    print(f"executed: {prepared.profile.instructions_executed} dynamic ops")
    print(f"objects:  {[o.id for o in prepared.objects]}")
    print()

    # 2. Partition with each scheme on the paper's machine (5-cycle moves).
    pipe = Pipeline(two_cluster_machine(move_latency=5))
    outcomes = pipe.run_all(prepared)

    base = outcomes["unified"].cycles
    rows = []
    for name in ("unified", "gdp", "profilemax", "naive"):
        outcome = outcomes[name]
        rows.append(
            [
                name,
                f"{outcome.cycles:.0f}",
                f"{base / outcome.cycles:.3f}",
                f"{outcome.dynamic_moves:.0f}",
            ]
        )
    print(
        format_table(
            ["scheme", "cycles", "vs unified", "dyn. intercluster moves"],
            rows,
        )
    )

    # 3. Where did GDP put the data?
    gdp = outcomes["gdp"]
    print("\nGDP object placement:")
    for obj_id, cluster in sorted(gdp.object_home.items()):
        size = prepared.objects[obj_id].size
        print(f"  cluster {cluster}: {obj_id:14s} ({size} bytes)")


if __name__ == "__main__":
    main()
