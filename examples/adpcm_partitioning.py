"""Deep dive: data partitioning for the rawcaudio ADPCM coder.

Recreates the paper's analysis on one benchmark end to end:

* the data-object inventory and access-pattern merge groups (§3.3.1),
* GDP's object placement and its byte balance (§3.3.2),
* all four schemes across the three intercluster latencies (Figs. 7/8),
* the exhaustive search over every object mapping with the GDP and
  Profile Max choices marked (Fig. 9).

Run:  python examples/adpcm_partitioning.py
"""

from repro.bench import get
from repro.evalmodel import exhaustive_search, format_table, scatter_plot
from repro.machine import two_cluster_machine
from repro.pipeline import Pipeline, PreparedProgram


def main() -> None:
    bench = get("rawcaudio")
    prepared = PreparedProgram.from_source(bench.source, bench.name)

    print(f"== {bench.name}: {bench.description} ==\n")

    print("data objects:")
    counts = prepared.object_access_counts()
    for obj in sorted(prepared.objects, key=lambda o: -o.size):
        print(
            f"  {obj.id:20s} {obj.size:5d} bytes, "
            f"{counts.get(obj.id, 0):6d} dynamic accesses"
        )

    print("\naccess-pattern merge groups (objects that must co-locate):")
    for group in prepared.merge.object_groups():
        print(f"  group {group.gid}: {sorted(group.object_ids)}")

    # Scheme comparison across the paper's three latencies.
    print("\nrelative performance vs unified memory:")
    rows = []
    for latency in (1, 5, 10):
        pipe = Pipeline(two_cluster_machine(move_latency=latency))
        rel = pipe.compare(prepared, schemes=("gdp", "profilemax", "naive"))
        rows.append(
            [f"{latency} cycles"]
            + [f"{rel[s]:.3f}" for s in ("gdp", "profilemax", "naive")]
        )
    print(format_table(["move latency", "GDP", "ProfileMax", "naive"], rows))

    # Figure 9 for this benchmark.
    machine = two_cluster_machine(move_latency=5)
    pipe = Pipeline(machine)
    gdp = pipe.run(prepared, "gdp")
    pmax = pipe.run(prepared, "profilemax")
    result = exhaustive_search(
        prepared,
        machine,
        scheme_homes={"gdp": gdp.object_home, "pmax": pmax.object_home},
    )
    print(
        f"\nexhaustive search: {len(result.points)} object mappings, "
        f"best is {result.best_improvement():.3f}x the worst"
    )
    print(
        scatter_plot(
            [p.imbalance for p in result.points],
            [result.normalized(p) for p in result.points],
            shades=[p.imbalance for p in result.points],
            marks={
                label: (pt.imbalance, result.normalized(pt))
                for label, pt in result.scheme_points.items()
            },
            x_label="object size imbalance",
            y_label="performance vs worst mapping",
        )
    )
    for label, pt in result.scheme_points.items():
        print(
            f"  {label}: {result.normalized(pt):.3f} of worst, "
            f"imbalance {pt.imbalance:.2f}"
        )


if __name__ == "__main__":
    main()
