"""Figure 10 — increase in dynamic intercluster moves at 5-cycle latency.

Paper: "Figure 10 shows the increase in dynamic intercluster
communication operations for the GDP and Profile Max methods over the
single, unified memory processor ... For most of the Mediabench
benchmarks, the GDP method has far fewer dynamic intercluster move
operations executing."
"""

from harness import FULL_SUITE, move_increase_pct, outcome

from repro.evalmodel import arithmetic_mean, format_table

LAT = 5


def compute_fig10():
    rows = []
    for name in FULL_SUITE:
        rows.append(
            [
                name,
                round(move_increase_pct(name, "gdp", LAT), 1),
                round(move_increase_pct(name, "profilemax", LAT), 1),
                round(move_increase_pct(name, "naive", LAT), 1),
            ]
        )
    return rows


def test_fig10_move_increase(benchmark):
    rows = benchmark.pedantic(compute_fig10, rounds=1, iterations=1)
    print()
    print(
        "Figure 10: % increase in dynamic intercluster moves vs unified "
        f"memory ({LAT}-cycle latency)"
    )
    print(format_table(["benchmark", "GDP", "ProfileMax", "naive"], rows))

    gdp_avg = arithmetic_mean([r[1] for r in rows])
    pmax_avg = arithmetic_mean([r[2] for r in rows])
    print(f"\naverages: GDP {gdp_avg:.1f}%  ProfileMax {pmax_avg:.1f}%")
    # GDP should not generate more traffic than Profile Max on average.
    assert gdp_avg <= pmax_avg + 10.0


def test_fig10_gdp_sometimes_below_unified():
    """Paper: "in many cases partitioning the memory has less intercluster
    traffic than the single memory architecture" thanks to the
    program-level pre-partition."""
    decreases = [
        n for n in FULL_SUITE if move_increase_pct(n, "gdp", LAT) < 0.0
    ]
    assert decreases, "expected at least one benchmark with fewer moves"


def test_fig10_traffic_correlates_with_performance():
    """fsed-style behaviour: the benchmark with the largest GDP move
    increase should be among the weaker performers (paper correlates the
    fsed spike in Fig. 10 with its Fig. 8 loss)."""
    worst = max(FULL_SUITE, key=lambda n: move_increase_pct(n, "gdp", LAT))
    base = outcome(worst, "unified", LAT).cycles
    rel = base / outcome(worst, "gdp", LAT).cycles
    assert rel < 1.05
