"""Ablation — RHOP vs Bottom-Up Greedy as the phase-2 partitioner.

RHOP's multilevel, estimate-driven refinement should beat the classic
greedy BUG assignment (Ellis's Bulldog) under identical GDP object homes,
mirroring the motivation for RHOP in the PLDI'03 paper.
"""

from functools import lru_cache

from harness import outcome, prepared, register_cache

from repro.evalmodel import arithmetic_mean, format_table
from repro.machine import two_cluster_machine
from repro.partition import BUG, memory_locks
from repro.pipeline.schemes import SchemeOutcome, finalize_and_evaluate

SAMPLE = ("rawcaudio", "rawdaudio", "fsed", "fir", "latnrm", "g721dec")
LAT = 5


@register_cache
@lru_cache(maxsize=None)
def bug_outcome(name: str) -> SchemeOutcome:
    prep = prepared(name)
    machine = two_cluster_machine(move_latency=LAT)
    object_home = outcome(name, "gdp", LAT).object_home
    module, _ = prep.fresh_copy()
    locks = memory_locks(module, object_home, prep.object_access_counts())
    bug = BUG(machine.as_partitioned())
    result = bug.partition_module(module, locks)
    eval_result = finalize_and_evaluate(
        prep, machine, module, result.assignment, result
    )
    return SchemeOutcome(
        "gdp+bug", machine, module, result.assignment, object_home,
        eval_result, 0.0, 1,
    )


def compute():
    rows = []
    for name in SAMPLE:
        base = outcome(name, "unified", LAT).cycles
        rhop_rel = base / outcome(name, "gdp", LAT).cycles
        bug_rel = base / bug_outcome(name).cycles
        rows.append([name, round(rhop_rel, 3), round(bug_rel, 3)])
    return rows


def test_ablation_rhop_vs_bug(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print("Ablation: phase-2 computation partitioner under GDP homes")
    print(format_table(["benchmark", "GDP+RHOP", "GDP+BUG"], rows))
    rhop_avg = arithmetic_mean([r[1] for r in rows])
    bug_avg = arithmetic_mean([r[2] for r in rows])
    print(f"\naverages: RHOP {rhop_avg:.3f}, BUG {bug_avg:.3f}")
    assert rhop_avg >= bug_avg - 0.02, "RHOP should not lose to greedy BUG"


def test_bug_respects_memory_locks():
    out = bug_outcome("rawcaudio")
    prep = prepared("rawcaudio")
    for func in out.module:
        for op in func.operations():
            if op.is_memory_access() and op.mem_objects():
                homes = {out.object_home[o] for o in op.mem_objects()
                         if o in out.object_home}
                if len(homes) == 1:
                    assert out.assignment[op.uid] in homes
