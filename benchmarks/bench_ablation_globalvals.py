"""Ablation — Terechko-style global-value placement policies.

Terechko et al. (CASES'03) compared unified / round-robin / affinity
placements of global values and "concluded that data partitioning must
consider the consuming operations of data objects".  This bench runs
those simple policies through the same locked phase-2 pipeline as GDP.
"""

from functools import lru_cache

from harness import outcome, prepared

from repro.evalmodel import arithmetic_mean, format_table
from repro.machine import two_cluster_machine
from repro.partition import (
    affinity_homes,
    round_robin_homes,
    single_cluster_homes,
    size_balanced_homes,
)
from repro.pipeline.schemes import run_gdp

SAMPLE = ("rawcaudio", "rawdaudio", "fsed", "pegwit", "huffman", "latnrm")
LAT = 5

POLICIES = {
    "one-cluster": lambda prep, k: single_cluster_homes(prep.objects, k),
    "round-robin": lambda prep, k: round_robin_homes(prep.objects, k),
    "size-balanced": lambda prep, k: size_balanced_homes(prep.objects, k),
    "affinity": lambda prep, k: affinity_homes(
        prep.objects, prep.object_access_counts(), k
    ),
}


@lru_cache(maxsize=None)
def policy_outcome(name: str, policy: str):
    prep = prepared(name)
    machine = two_cluster_machine(move_latency=LAT)
    homes = POLICIES[policy](prep, machine.num_clusters)
    return run_gdp(prep, machine, object_home=homes)


def compute():
    rows = []
    for name in SAMPLE:
        base = outcome(name, "unified", LAT).cycles
        row = [name, round(base / outcome(name, "gdp", LAT).cycles, 3)]
        for policy in POLICIES:
            row.append(round(base / policy_outcome(name, policy).cycles, 3))
        rows.append(row)
    return rows


def test_ablation_global_value_policies(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print("Ablation: object placement policy (relative perf vs unified)")
    print(format_table(["benchmark", "GDP"] + list(POLICIES), rows))
    gdp_avg = arithmetic_mean([r[1] for r in rows])
    rr_avg = arithmetic_mean([r[3] for r in rows])
    print(f"\naverages: GDP {gdp_avg:.3f}, round-robin {rr_avg:.3f}")
    # GDP considers consuming operations; blind round-robin should lose.
    assert gdp_avg >= rr_avg - 0.02


def test_policies_cover_all_objects():
    prep = prepared("rawcaudio")
    for policy, fn in POLICIES.items():
        homes = fn(prep, 2)
        assert set(homes) == set(prep.objects.ids()), policy
        assert all(c in (0, 1) for c in homes.values())
