"""Precision-vs-cycles: does a sharper points-to tier buy partition quality?

The paper leans on "sophisticated interprocedural pointer analysis" to
annotate memory ops before partitioning; this bench makes that axis
measurable.  For each benchmark and each precision tier it reports the
average per-op points-to set size, the may-alias pair count, and the GDP
cycle count — and asserts the refinement contract: sharper tiers may only
shrink target sets, and on the pointer-heavy benchmarks the shrink is
strict while no scheme's cycle count gets worse.
"""

from harness import outcome, pointsto_solution, prepared

from repro.analysis import TIERS
from repro.evalmodel import format_table

#: Benchmarks whose pointer idioms (pointer tables, struct-of-pointers,
#: pointer-returning helpers) give the sharper tiers something to win.
POINTER_SUITE = ("cjpeg", "djpeg", "unepic", "epic", "pegwit")

#: Globals-only controls: precision is already maxed out at the baseline,
#: so every tier must report identical stats and cycles.
CONTROL_SUITE = ("rawcaudio", "huffman")

SCHEMES = ("unified", "gdp", "profilemax", "naive")
LATENCY = 5


def _row(name, tier):
    stats = pointsto_solution(name, tier).stats()
    cycles = outcome(name, "gdp", LATENCY, tier).cycles
    return stats, cycles


def test_precision_vs_cycles_table(benchmark):
    def build():
        rows = []
        for name in POINTER_SUITE + CONTROL_SUITE:
            for tier in TIERS:
                stats, cycles = _row(name, tier)
                rows.append([
                    name, tier, f"{stats.avg_set_size:.3f}",
                    f"{stats.singleton_ratio:.0%}",
                    str(stats.mayalias_pairs), f"{cycles:.0f}",
                ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(f"Points-to precision vs GDP cycles @ {LATENCY}-cycle latency")
    print(format_table(
        ["benchmark", "tier", "avg|pts|", "singleton", "mayalias", "gdp cycles"],
        rows,
    ))
    assert len(rows) == len(TIERS) * (len(POINTER_SUITE) + len(CONTROL_SUITE))


def test_sharper_tiers_strictly_shrink_on_pointer_suite():
    """Acceptance: on >= 3 benchmarks some sharper tier strictly shrinks
    the average points-to set size while no scheme's cycle count gets
    worse under that tier.  (A sharper tier may also shift a placement
    heuristic for the worse — cjpeg's cs tier does exactly that to
    ProfileMax — so the clean-win tier need not be the sharpest one.)"""
    clean_wins = set()
    shrink_log = []
    for name in POINTER_SUITE:
        base = pointsto_solution(name, "andersen").stats()
        for tier in TIERS[1:]:
            sharp = pointsto_solution(name, tier).stats()
            assert sharp.avg_set_size <= base.avg_set_size + 1e-9, (
                name, tier, "a sharper tier may never grow the average set"
            )
            if sharp.avg_set_size < base.avg_set_size - 1e-9:
                shrink_log.append((name, tier))
                regressed = any(
                    outcome(name, scheme, LATENCY, tier).cycles
                    > outcome(name, scheme, LATENCY, "andersen").cycles
                    for scheme in SCHEMES
                )
                if not regressed:
                    clean_wins.add(name)
    assert len(clean_wins) >= 3, (clean_wins, shrink_log)


def test_control_suite_is_tier_invariant():
    """Globals-only benchmarks are already singleton-precise: every tier
    must agree exactly, so the knob is a no-op where it should be."""
    for name in CONTROL_SUITE:
        base = pointsto_solution(name, "andersen").stats()
        assert base.singleton_ratio == 1.0
        for tier in TIERS[1:]:
            sharp = pointsto_solution(name, tier).stats()
            assert sharp.avg_set_size == base.avg_set_size
            assert sharp.mayalias_pairs == base.mayalias_pairs
            assert (
                outcome(name, "gdp", LATENCY, tier).cycles
                == outcome(name, "gdp", LATENCY, "andersen").cycles
            )


def test_pointsto_solution_cache_hits():
    """The per-module solution is registered in the harness cache registry:
    a second lookup must be a cache hit, not a re-solve."""
    pointsto_solution.cache_clear()
    first = pointsto_solution("rawcaudio", "field")
    before = pointsto_solution.cache_info().hits
    second = pointsto_solution("rawcaudio", "field")
    after = pointsto_solution.cache_info().hits
    assert second is first
    assert after == before + 1
    # And clear_caches() owns it (registered via register_cache).
    import harness

    assert pointsto_solution in harness._CACHES
