"""Section 4.5 — effects on compile time.

Paper: "The Profile Max partitioner is actually two complete runs of this
detailed computation partitioner. ... Since the GDP method only requires
one run of this detailed computation partitioner, the compile time is
significantly reduced.  This is similar to the run time of the Naive
method."
"""

from harness import FULL_SUITE, resilient

from repro.evalmodel import format_table

LAT = 5
SAMPLE = FULL_SUITE[:8]


def rhop_seconds(name: str, scheme: str) -> float:
    """Detailed-partitioner wall time from the RunReport phase clocks
    (the per-phase timings the resilient pipeline records on every
    attempt — the same numbers ``--run-report`` exposes)."""
    return resilient(name, scheme, LAT).report.phase_seconds(
        "rhop", scheme=scheme
    )


def compute_times():
    rows = []
    for name in SAMPLE:
        gdp = resilient(name, "gdp", LAT)
        pmax = resilient(name, "profilemax", LAT)
        rows.append(
            [
                name,
                round(rhop_seconds(name, "gdp"), 3),
                round(rhop_seconds(name, "profilemax"), 3),
                round(rhop_seconds(name, "naive"), 3),
                gdp.rhop_runs,
                pmax.rhop_runs,
            ]
        )
    return rows


def test_sec45_compile_time(benchmark):
    rows = benchmark.pedantic(compute_times, rounds=1, iterations=1)
    print()
    print("Section 4.5: detailed-partitioner time per scheme (seconds)")
    print(
        format_table(
            ["benchmark", "GDP", "ProfileMax", "naive", "GDP runs", "PMax runs"],
            rows,
        )
    )
    gdp_total = sum(r[1] for r in rows)
    pmax_total = sum(r[2] for r in rows)
    naive_total = sum(r[3] for r in rows)
    print(
        f"\ntotals: GDP {gdp_total:.2f}s, ProfileMax {pmax_total:.2f}s, "
        f"naive {naive_total:.2f}s"
    )
    # Profile Max runs the detailed partitioner twice; its time should be
    # clearly larger than GDP's single run and roughly double.
    assert pmax_total > gdp_total * 1.3
    # GDP and naive both run it once.
    assert abs(gdp_total - naive_total) < 0.7 * max(gdp_total, naive_total)


def test_sec45_lint_stats_reuse():
    """The lint CLI's per-tier stats footer used to re-solve all three
    points-to tiers from scratch after the refinement differ pass had
    already solved them inside the (then discarded) pass context.
    ``lint_with_stats`` hands the context back, so the footer now reads
    the memoized solutions.  Measure the marginal cost of both shapes."""
    import time

    from repro.analysis.pointsto import TIERS, solve_pointsto
    from repro.bench import get as get_benchmark
    from repro.lang import compile_source
    from repro.lint import DETERMINISTIC_COLUMNS, lint_with_stats

    bench = get_benchmark("fir")
    module = compile_source(bench.source, bench.name)

    t0 = time.perf_counter()
    _report, ctx = lint_with_stats(module)
    t1 = time.perf_counter()
    reused = {
        tier: {
            c: ctx.pointsto(tier).stats().to_dict()[c]
            for c in DETERMINISTIC_COLUMNS
        }
        for tier in TIERS
    }
    t2 = time.perf_counter()
    fresh = {
        tier: {
            c: solve_pointsto(module, tier).stats().to_dict()[c]
            for c in DETERMINISTIC_COLUMNS
        }
        for tier in TIERS
    }
    t3 = time.perf_counter()

    print()
    print(
        f"lint passes {t1 - t0:.3f}s; stats via context {t2 - t1:.4f}s; "
        f"stats via re-solve {t3 - t2:.4f}s"
    )
    # Identical numbers either way...
    assert reused == fresh
    # ...but reading the memoized solutions must beat re-solving.
    assert (t2 - t1) < (t3 - t2)


def test_sec45_run_counts():
    gdp = resilient("rawcaudio", "gdp", LAT)
    pmax = resilient("rawcaudio", "profilemax", LAT)
    naive = resilient("rawcaudio", "naive", LAT)
    unified = resilient("rawcaudio", "unified", LAT)
    assert gdp.rhop_runs == 1
    assert pmax.rhop_runs == 2
    assert naive.rhop_runs == 1
    assert unified.rhop_runs == 1


def test_sec45_emit_partition_wallclock(tmp_path):
    """Pin the perf trajectory: write ``BENCH_partition_wallclock.json``
    (repo root) with every bench's partition phase clocks, read from the
    same RunReport attempt events the Section 4.5 table uses.

    The payload is scrubbed to the stable skeleton a re-anchor can diff:
    phase names and schemes are deterministic; only the second counts
    themselves vary run to run (they are the measurement)."""
    import json
    import os

    schemes = ("gdp", "profilemax", "naive", "unified")
    benches = {}
    for name in SAMPLE:
        per_scheme = {}
        for scheme in schemes:
            report = resilient(name, scheme, LAT).report
            phases = {}
            for attempt in report.attempts(scheme):
                for phase, seconds in attempt["phases"].items():
                    phases[phase] = phases.get(phase, 0.0) + seconds
            per_scheme[scheme] = {
                phase: round(seconds, 6)
                for phase, seconds in sorted(phases.items())
            }
        benches[name] = per_scheme
    payload = {
        "latency": LAT,
        "schemes": list(schemes),
        "benches": benches,
    }
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_partition_wallclock.json",
    )
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Structural invariants a re-anchor can rely on: every sampled bench
    # appears, every scheme clocked its detailed-partitioner phase, and
    # ProfileMax's two runs cost more rhop time than GDP's one in total.
    assert set(benches) == set(SAMPLE)
    for name in SAMPLE:
        for scheme in schemes:
            assert "rhop" in benches[name][scheme], (name, scheme)
    gdp_total = sum(benches[n]["gdp"]["rhop"] for n in SAMPLE)
    pmax_total = sum(benches[n]["profilemax"]["rhop"] for n in SAMPLE)
    assert pmax_total > gdp_total
