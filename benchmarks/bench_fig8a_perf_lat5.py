"""Figure 8(a) — GDP and Profile Max vs unified memory at 5-cycle latency.

Paper numbers: "In the 5-cycle intercluster latency case, our GDP method
achieves an average of 95.6% of the performance of the unified cache,
while the Profile Max method has an average of 90.0%."
"""

from harness import FULL_SUITE, performance_figure, relative_performance

from repro.evalmodel import arithmetic_mean

PAPER_GDP_AVG = 0.956
PAPER_PMAX_AVG = 0.900


def test_fig8a_performance_lat5(benchmark):
    text = benchmark.pedantic(
        performance_figure, args=(5,), rounds=1, iterations=1
    )
    print()
    print("Figure 8(a):", text, sep="\n")

    gdp_avg = arithmetic_mean(
        [relative_performance(n, "gdp", 5) for n in FULL_SUITE]
    )
    pmax_avg = arithmetic_mean(
        [relative_performance(n, "profilemax", 5) for n in FULL_SUITE]
    )
    print(
        f"\naverages: GDP {gdp_avg:.3f} (paper {PAPER_GDP_AVG}), "
        f"ProfileMax {pmax_avg:.3f} (paper {PAPER_PMAX_AVG})"
    )
    # Shape: GDP beats Profile Max on average and stays near unified.
    assert gdp_avg > pmax_avg - 0.01
    assert gdp_avg > 0.85


def test_fig8a_some_benchmark_beats_unified():
    """Paper: "in several cases, our partitioned memory is actually
    performing better than the unified memory case" — GDP's program-level
    view hands RHOP a better starting partition."""
    best = max(relative_performance(n, "gdp", 5) for n in FULL_SUITE)
    assert best > 1.0
