"""Ablation — scaling to a 4-cluster machine.

The paper evaluates two clusters; the algorithms are k-way throughout, so
this bench checks the pipeline scales: GDP spreads objects over four
memories, performance stays within a sane band of the unified model, and
the scheme ordering is preserved.
"""

from functools import lru_cache

from harness import prepared

from repro.evalmodel import arithmetic_mean, format_table
from repro.machine import four_cluster_machine
from repro.pipeline.schemes import run_scheme

SAMPLE = ("rawcaudio", "g721enc", "fsed", "mpeg2enc")
LAT = 5


@lru_cache(maxsize=None)
def outcome4(name: str, scheme: str):
    machine = four_cluster_machine(move_latency=LAT)
    return run_scheme(prepared(name), machine, scheme)


def compute():
    rows = []
    for name in SAMPLE:
        base = outcome4(name, "unified").cycles
        rows.append(
            [
                name,
                round(base / outcome4(name, "gdp").cycles, 3),
                round(base / outcome4(name, "profilemax").cycles, 3),
                round(base / outcome4(name, "naive").cycles, 3),
            ]
        )
    return rows


def test_ablation_four_clusters(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print("Ablation: 4-cluster machine (relative perf vs unified)")
    print(format_table(["benchmark", "GDP", "ProfileMax", "naive"], rows))
    gdp_avg = arithmetic_mean([r[1] for r in rows])
    print(f"\nGDP average: {gdp_avg:.3f}")
    assert gdp_avg > 0.5


def test_four_cluster_objects_spread():
    out = outcome4("mpeg2enc", "gdp")
    used_clusters = set(out.object_home.values())
    assert len(used_clusters) >= 3, "GDP should use most of the 4 memories"


def test_four_cluster_assignment_valid():
    out = outcome4("rawcaudio", "gdp")
    assert all(0 <= c < 4 for c in out.assignment.values())
