"""Figure 2 — cycle increase of Naïve (data-incognizant) partitioning.

Paper: "Figure 2 shows the percentage increase in number of cycles given
a 1, 5 or 10 cycle intercluster communication latency. ... at higher
intercluster move latencies the partition of the data has a significant
impact on the achievable performance."

Expected shape: small increases at 1-cycle latency, much larger at 5 and
10 cycles; some benchmarks barely affected (moves hidden behind existing
computation moves).
"""

from harness import (
    FULL_SUITE,
    LATENCIES,
    cycle_increase_pct,
    outcome,
)

from repro.evalmodel import arithmetic_mean, format_table


def compute_fig2():
    rows = []
    per_latency = {lat: [] for lat in LATENCIES}
    for name in FULL_SUITE:
        row = [name]
        for lat in LATENCIES:
            pct = cycle_increase_pct(name, "naive", lat)
            per_latency[lat].append(pct)
            row.append(round(pct, 1))
        rows.append(row)
    rows.append(
        ["average"] + [round(arithmetic_mean(per_latency[lat]), 1) for lat in LATENCIES]
    )
    return rows


def test_fig2_naive_cycle_increase(benchmark):
    rows = benchmark.pedantic(compute_fig2, rounds=1, iterations=1)
    print()
    print("Figure 2: % cycle increase, naive data placement vs unified memory")
    print(format_table(["benchmark", "lat=1", "lat=5", "lat=10"], rows))

    averages = {lat: rows[-1][i + 1] for i, lat in enumerate(LATENCIES)}
    # Shape checks from the paper: overhead grows with latency and the
    # 1-cycle case is mild compared to the 10-cycle case.
    assert averages[1] <= averages[5] <= averages[10] + 1e9  # monotone-ish
    assert averages[1] < averages[10]
    assert averages[10] > 2.0, "10-cycle latency should visibly hurt naive"


def test_fig2_some_benchmark_insensitive():
    """The paper: "Some benchmarks ... had no noticeable difference in
    performance even at higher intercluster move latencies"."""
    increases = [cycle_increase_pct(n, "naive", 10) for n in FULL_SUITE]
    assert min(increases) < 8.0
