"""Shared machinery for the figure/table benches.

Prepared programs and scheme outcomes come from the execution engine's
content-addressed on-disk artifact cache (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``), so warm reruns of any bench skip the interpreter,
the points-to solver, and the partitioners.  The ``lru_cache`` layer on
top only serves repeated in-process lookups; it holds no state a pool
worker could observe — workers in a parallel sweep rehydrate from disk,
never from another process's dicts.  Set ``REPRO_BENCH_CACHE=off`` to
force every run cold.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Tuple

from repro.bench import get as get_benchmark, names as bench_names
from repro.evalmodel import arithmetic_mean, bar_chart, format_table
from repro.exec import ArtifactCache, RunConfig
from repro.exec.engine import load_or_prepare, run_prepared_scheme
from repro.machine import two_cluster_machine
from repro.pipeline import PreparedProgram
from repro.pipeline.schemes import SchemeOutcome

#: The benchmark set used for the full-suite figures (Figs. 2, 7, 8, 10).
FULL_SUITE: Tuple[str, ...] = tuple(bench_names())

#: The benchmarks small enough for the exhaustive search of Figure 9.
FIG9_SUITE: Tuple[str, ...] = ("rawcaudio", "rawdaudio")

LATENCIES: Tuple[int, ...] = (1, 5, 10)

#: Engine configuration for every harness lookup.  Policy and root come
#: from the environment so CI can pin a per-run cache directory.
BENCH_CONFIG = RunConfig(
    cache=os.environ.get("REPRO_BENCH_CACHE", "on"),
    cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
)


def artifact_cache() -> ArtifactCache:
    """One artifact-cache handle per call — cheap, and no mutable handle
    is ever shared across pool workers."""
    return ArtifactCache(BENCH_CONFIG.cache_dir, BENCH_CONFIG.cache)


@lru_cache(maxsize=None)
def prepared(name: str, pointsto_tier: str = "andersen") -> PreparedProgram:
    bench = get_benchmark(name)
    config = BENCH_CONFIG.replace(pointsto_tier=pointsto_tier)
    program, _ir_hash, _status = load_or_prepare(
        bench.source, bench.name, config, artifact_cache()
    )
    return program


@lru_cache(maxsize=None)
def outcome(
    name: str, scheme: str, latency: int, pointsto_tier: str = "andersen"
) -> SchemeOutcome:
    machine = two_cluster_machine(move_latency=latency)
    config = BENCH_CONFIG.replace(
        scheme=scheme, latency=latency, pointsto_tier=pointsto_tier
    )
    result, _status = run_prepared_scheme(
        prepared(name, pointsto_tier), machine, config, scheme,
        artifact_cache(),
    )
    return result


@lru_cache(maxsize=None)
def resilient(name: str, scheme: str, latency: int):
    """Scheme outcome via :class:`repro.resilience.ResilientPipeline` —
    use when a bench needs the :class:`RunReport` per-phase wall clocks
    (e.g. Section 4.5 compile-time numbers) rather than just the result.
    Deliberately never served from the artifact cache: a rehydrated
    outcome has no fresh phase timings."""
    from repro.resilience import ResilientPipeline

    machine = two_cluster_machine(move_latency=latency)
    pipe = ResilientPipeline.from_config(
        RunConfig(retries=0, fallback=False, validate=False, cache="off"),
        machine=machine,
    )
    return pipe.run(prepared(name), scheme)


#: In-process memo tables; cleared by :func:`clear_caches` (wired into
#: ``conftest.py``) so repeated in-process pytest sessions re-read the
#: artifact store.  Bench modules with their own ``lru_cache`` helpers
#: can join via :func:`register_cache`.  Never visible to pool workers —
#: cross-process reuse goes through the on-disk artifact cache only.
_CACHES = [prepared, outcome, resilient]


def register_cache(fn):
    """Register an ``lru_cache``-decorated callable with clear_caches()."""
    _CACHES.append(fn)
    return fn


def clear_caches() -> None:
    """Drop every in-process memo (the on-disk artifacts remain)."""
    for fn in _CACHES:
        fn.cache_clear()


@register_cache
@lru_cache(maxsize=None)
def pointsto_solution(name: str, pointsto_tier: str = "andersen"):
    """The points-to solution annotating a prepared benchmark — cached so
    the tiered solvers run once per (benchmark, tier) regardless of how
    many schemes/figures consume the prepared program."""
    return prepared(name, pointsto_tier).pointsto


def relative_performance(name: str, scheme: str, latency: int) -> float:
    """Cycles(unified) / cycles(scheme): 1.0 = unified-memory parity."""
    base = outcome(name, "unified", latency).cycles
    cycles = outcome(name, scheme, latency).cycles
    return base / cycles if cycles else 0.0


def cycle_increase_pct(name: str, scheme: str, latency: int) -> float:
    """Percentage increase in cycles over the unified model (Figure 2)."""
    base = outcome(name, "unified", latency).cycles
    cycles = outcome(name, scheme, latency).cycles
    return 100.0 * (cycles - base) / base if base else 0.0


def move_increase_pct(name: str, scheme: str, latency: int) -> float:
    """Percentage increase in dynamic intercluster moves (Figure 10)."""
    base = outcome(name, "unified", latency).dynamic_moves
    moves = outcome(name, scheme, latency).dynamic_moves
    if base == 0:
        return 0.0 if moves == 0 else 100.0
    return 100.0 * (moves - base) / base


def performance_figure(latency: int, suite=FULL_SUITE) -> str:
    """Render one of Figs. 7 / 8(a) / 8(b)."""
    rows: List[List[object]] = []
    gdp_vals: List[float] = []
    pmax_vals: List[float] = []
    for name in suite:
        g = relative_performance(name, "gdp", latency)
        p = relative_performance(name, "profilemax", latency)
        rows.append([name, g, p])
        gdp_vals.append(g)
        pmax_vals.append(p)
    rows.append(["average", arithmetic_mean(gdp_vals), arithmetic_mean(pmax_vals)])
    naive_avg = arithmetic_mean(
        [relative_performance(n, "naive", latency) for n in suite]
    )
    rows.append(["average(naive)", naive_avg, ""])
    table = format_table(["benchmark", "GDP", "ProfileMax"], rows)
    chart = bar_chart(
        list(suite),
        {
            "GDP ": [relative_performance(n, "gdp", latency) for n in suite],
            "PMax": [relative_performance(n, "profilemax", latency) for n in suite],
        },
        baseline=1.0,
    )
    return (
        f"Relative performance vs unified memory, {latency}-cycle move "
        f"latency (higher is better, 1.0 = unified parity)\n\n{table}\n\n{chart}"
    )
