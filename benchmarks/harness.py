"""Shared machinery for the figure/table benches.

Prepared programs and scheme outcomes are cached for the lifetime of the
pytest session so that figures sharing data (e.g. Fig. 8a and Fig. 10 both
need the 5-cycle outcomes) compute it once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.bench import all_benchmarks, get as get_benchmark, names as bench_names
from repro.evalmodel import arithmetic_mean, bar_chart, format_table
from repro.machine import two_cluster_machine
from repro.pipeline import PreparedProgram
from repro.pipeline.schemes import SchemeOutcome, run_scheme

#: The benchmark set used for the full-suite figures (Figs. 2, 7, 8, 10).
FULL_SUITE: Tuple[str, ...] = tuple(bench_names())

#: The benchmarks small enough for the exhaustive search of Figure 9.
FIG9_SUITE: Tuple[str, ...] = ("rawcaudio", "rawdaudio")

LATENCIES: Tuple[int, ...] = (1, 5, 10)


@lru_cache(maxsize=None)
def prepared(name: str, pointsto_tier: str = "andersen") -> PreparedProgram:
    bench = get_benchmark(name)
    return PreparedProgram.from_source(
        bench.source, bench.name, pointsto_tier=pointsto_tier
    )


@lru_cache(maxsize=None)
def outcome(
    name: str, scheme: str, latency: int, pointsto_tier: str = "andersen"
) -> SchemeOutcome:
    machine = two_cluster_machine(move_latency=latency)
    return run_scheme(prepared(name, pointsto_tier), machine, scheme)


@lru_cache(maxsize=None)
def resilient(name: str, scheme: str, latency: int):
    """Scheme outcome via :class:`repro.resilience.ResilientPipeline` —
    use when a bench needs the :class:`RunReport` per-phase wall clocks
    (e.g. Section 4.5 compile-time numbers) rather than just the result."""
    from repro.resilience import ResilientPipeline

    machine = two_cluster_machine(move_latency=latency)
    pipe = ResilientPipeline(machine, retries=0, fallback=False,
                             validate=False)
    return pipe.run(prepared(name), scheme)


#: Session-lifetime caches; cleared by :func:`clear_caches` (wired into
#: ``conftest.py``) so repeated in-process pytest sessions don't reuse
#: stale outcomes.  Bench modules with their own ``lru_cache`` helpers
#: can join via :func:`register_cache`.
_CACHES = [prepared, outcome, resilient]


def register_cache(fn):
    """Register an ``lru_cache``-decorated callable with clear_caches()."""
    _CACHES.append(fn)
    return fn


def clear_caches() -> None:
    """Drop every cached prepared program and scheme outcome."""
    for fn in _CACHES:
        fn.cache_clear()


@register_cache
@lru_cache(maxsize=None)
def pointsto_solution(name: str, pointsto_tier: str = "andersen"):
    """The points-to solution annotating a prepared benchmark — cached so
    the tiered solvers run once per (benchmark, tier) regardless of how
    many schemes/figures consume the prepared program."""
    return prepared(name, pointsto_tier).pointsto


def relative_performance(name: str, scheme: str, latency: int) -> float:
    """Cycles(unified) / cycles(scheme): 1.0 = unified-memory parity."""
    base = outcome(name, "unified", latency).cycles
    cycles = outcome(name, scheme, latency).cycles
    return base / cycles if cycles else 0.0


def cycle_increase_pct(name: str, scheme: str, latency: int) -> float:
    """Percentage increase in cycles over the unified model (Figure 2)."""
    base = outcome(name, "unified", latency).cycles
    cycles = outcome(name, scheme, latency).cycles
    return 100.0 * (cycles - base) / base if base else 0.0


def move_increase_pct(name: str, scheme: str, latency: int) -> float:
    """Percentage increase in dynamic intercluster moves (Figure 10)."""
    base = outcome(name, "unified", latency).dynamic_moves
    moves = outcome(name, scheme, latency).dynamic_moves
    if base == 0:
        return 0.0 if moves == 0 else 100.0
    return 100.0 * (moves - base) / base


def performance_figure(latency: int, suite=FULL_SUITE) -> str:
    """Render one of Figs. 7 / 8(a) / 8(b)."""
    rows: List[List[object]] = []
    gdp_vals: List[float] = []
    pmax_vals: List[float] = []
    for name in suite:
        g = relative_performance(name, "gdp", latency)
        p = relative_performance(name, "profilemax", latency)
        rows.append([name, g, p])
        gdp_vals.append(g)
        pmax_vals.append(p)
    rows.append(["average", arithmetic_mean(gdp_vals), arithmetic_mean(pmax_vals)])
    naive_avg = arithmetic_mean(
        [relative_performance(n, "naive", latency) for n in suite]
    )
    rows.append(["average(naive)", naive_avg, ""])
    table = format_table(["benchmark", "GDP", "ProfileMax"], rows)
    chart = bar_chart(
        list(suite),
        {
            "GDP ": [relative_performance(n, "gdp", latency) for n in suite],
            "PMax": [relative_performance(n, "profilemax", latency) for n in suite],
        },
        baseline=1.0,
    )
    return (
        f"Relative performance vs unified memory, {latency}-cycle move "
        f"latency (higher is better, 1.0 = unified parity)\n\n{table}\n\n{chart}"
    )
