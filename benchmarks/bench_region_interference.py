"""Acceptance for the region-granular analysis stack (PR 9).

Three suite-wide gates:

* ``regioncheck`` reports **zero ERROR-level violations** for every
  registered bench × scheme × points-to tier — the region-located
  contracts refine invariants every valid partition already satisfies,
  so any error here is a checker or partitioner bug;
* at least **three benches carry ``region-splittable`` advisories** —
  the sub-object partitioning candidates the ROADMAP item needs to
  exist before a splitter is worth building;
* every scheme outcome's **roofline ratio is ≥ 1.0** — the red-blue
  pebble I/O lower bound must actually be a lower bound.
"""

from harness import FULL_SUITE, outcome, prepared

from repro.analysis.modref import ModRefAnalysis
from repro.analysis.pointsto import TIERS
from repro.lint.regioncheck import check_region_outcome

LAT = 5
SCHEMES = ("gdp", "profilemax", "naive", "unified")


def test_regioncheck_zero_errors_suite_wide():
    """No region-granular contract is violated by any scheme under any
    points-to tier (the annotation-driven checker inherits each prep
    tier's object sets, covering the whole refinement chain)."""
    failures = []
    checked = 0
    for name in FULL_SUITE:
        for tier in TIERS:
            prep = prepared(name, tier)
            for scheme in SCHEMES:
                out = outcome(name, scheme, LAT, tier)
                report = check_region_outcome(prep, out)
                checked += 1
                for diag in report.errors:
                    failures.append(f"{name}/{tier}/{scheme}: {diag.render()}")
    assert checked == len(FULL_SUITE) * len(TIERS) * len(SCHEMES)
    assert not failures, "\n".join(failures[:20])


def test_splittable_advisories_on_at_least_three_benches():
    """≥3 benches own objects whose MOD/REF regions decompose into
    disjoint never-co-accessed intervals (cjpeg's plane pointers and the
    epic family's level slots are the expected candidates)."""
    with_advisories = {}
    for name in FULL_SUITE:
        modref = ModRefAnalysis(prepared(name).module)
        splittable = modref.splittable_objects()
        if splittable:
            with_advisories[name] = {
                obj: len(parts) for obj, parts in splittable.items()
            }
    print()
    for name, objs in sorted(with_advisories.items()):
        print(f"{name}: {objs}")
    assert len(with_advisories) >= 3, with_advisories


def test_splittable_components_are_disjoint_and_sorted():
    """Each advisory's component list is a canonical region decomposition:
    sorted, non-empty, pairwise non-overlapping intervals (adjacent
    slots like ``[0,4)+[4,8)`` are disjoint — no shared bytes — and are
    exactly what distinct affine slots produce)."""
    seen_any = False
    for name in FULL_SUITE:
        modref = ModRefAnalysis(prepared(name).module)
        for obj, parts in modref.splittable_objects().items():
            seen_any = True
            assert len(parts) >= 2, (name, obj)
            for lo, hi in parts:
                assert lo < hi, (name, obj, parts)
            for (_, prev_hi), (next_lo, _) in zip(parts, parts[1:]):
                assert prev_hi <= next_lo, (name, obj, parts)
    assert seen_any


def test_roofline_ratio_sound_for_every_scheme():
    """total traffic / I/O lower bound ≥ 1.0 everywhere, with a positive
    bound (an empty bound would make the ratio vacuous)."""
    for name in FULL_SUITE:
        for scheme in SCHEMES:
            out = outcome(name, scheme, LAT)
            roofline = out.roofline
            assert roofline is not None, (name, scheme)
            assert roofline["lower_bound_bytes"] > 0, (name, scheme)
            assert roofline["ratio"] >= 1.0, (name, scheme, roofline)
            assert (
                roofline["total_traffic_bytes"]
                >= roofline["memory_traffic_bytes"]
            )


def test_roofline_move_term_orders_schemes():
    """The move term prices data placement: on every bench the unified
    machine (no intercluster moves) must sit at least as close to the
    optimum as the naive post-pass placement."""
    for name in FULL_SUITE:
        unified = outcome(name, "unified", LAT).roofline
        naive = outcome(name, "naive", LAT).roofline
        assert unified["ratio"] <= naive["ratio"] + 1e-9, (
            name, unified, naive,
        )
