"""Figure 8(b) — GDP and Profile Max vs unified memory at 10-cycle latency.

Paper numbers: "For the 10-cycle intercluster communication latency case,
the GDP is on average 96.3% of the single memory performance, while the
Profile Max scheme is 88.1%."  And: "Comparing the 5-cycle and 10-cycle
latency results shows a larger gap between the two methods."
"""

from harness import FULL_SUITE, performance_figure, relative_performance

from repro.evalmodel import arithmetic_mean

PAPER_GDP_AVG = 0.963
PAPER_PMAX_AVG = 0.881


def _avg(scheme: str, latency: int) -> float:
    return arithmetic_mean(
        [relative_performance(n, scheme, latency) for n in FULL_SUITE]
    )


def test_fig8b_performance_lat10(benchmark):
    text = benchmark.pedantic(
        performance_figure, args=(10,), rounds=1, iterations=1
    )
    print()
    print("Figure 8(b):", text, sep="\n")
    gdp_avg = _avg("gdp", 10)
    pmax_avg = _avg("profilemax", 10)
    print(
        f"\naverages: GDP {gdp_avg:.3f} (paper {PAPER_GDP_AVG}), "
        f"ProfileMax {pmax_avg:.3f} (paper {PAPER_PMAX_AVG})"
    )
    assert gdp_avg > pmax_avg - 0.01
    assert gdp_avg > 0.80


def test_fig8_gap_widens_with_latency():
    """The GDP-vs-ProfileMax gap should not shrink when latency rises
    from 5 to 10 cycles (paper Section 4.2)."""
    gap5 = _avg("gdp", 5) - _avg("profilemax", 5)
    gap10 = _avg("gdp", 10) - _avg("profilemax", 10)
    assert gap10 >= gap5 - 0.03


def test_fig8_both_beat_naive_at_high_latency():
    """Both data-cognizant methods outperform the Naive post-pass at
    10-cycle latency on average."""
    naive_avg = _avg("naive", 10)
    assert _avg("gdp", 10) > naive_avg - 0.02
