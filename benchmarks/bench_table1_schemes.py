"""Table 1 — the three object/computation partitioning methods.

Regenerates the scheme-definition table from the live scheme registry so
the printed table always matches what the code actually runs.
"""

from harness import outcome

from repro.bench import names as bench_names
from repro.evalmodel import format_table
from repro.exec import ParallelRunner, RunConfig
from repro.pipeline.schemes import SCHEME_TABLE


def test_table1_scheme_definitions(benchmark):
    def build():
        rows = []
        for key in ("gdp", "profilemax", "naive", "unified"):
            meta = SCHEME_TABLE[key]
            rows.append(
                [
                    meta["label"],
                    meta["object_partitioner"],
                    meta["object_assignment"],
                    meta["computation_partitioner"],
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Table 1: object and computation partitioning methods")
    print(
        format_table(
            [
                "Algorithm",
                "Object Partitioner",
                "Object Assignment",
                "Computation Partitioner",
            ],
            rows,
        )
    )
    assert len(rows) == 4
    assert all(row[3] == "RHOP" for row in rows)


def test_table1_schemes_runnable():
    """Every Table-1 scheme actually runs end to end on a benchmark."""
    for scheme in SCHEME_TABLE:
        result = outcome("rawcaudio", scheme, 5)
        assert result.cycles > 0


def test_table1_sweep_parallel_matches_serial(tmp_path):
    """--jobs 4 produces byte-identical deterministic output to serial.

    Both sweeps start from their own cold cache so the per-cell event
    structure matches; the deterministic serialisation scrubs wall clocks
    and cache locality, leaving only the seed-determined results."""
    benches = bench_names()[:3]
    serial = ParallelRunner(
        RunConfig(cache_dir=str(tmp_path / "serial"))
    ).sweep(benches, jobs=1)
    parallel = ParallelRunner(
        RunConfig(cache_dir=str(tmp_path / "parallel"))
    ).sweep(benches, jobs=4)
    assert serial.to_json(deterministic=True) == parallel.to_json(
        deterministic=True
    )
    assert all(cell["status"] == "ok" for cell in serial.cells)


def test_table1_full_sweep_warm_cache_speedup(tmp_path):
    """A warm-cache rerun of the full Table-1 sweep is >=3x faster than
    cold and serves >=90% of its cells from the outcome cache."""
    runner = ParallelRunner(RunConfig(cache_dir=str(tmp_path), jobs=4))
    benches = bench_names()
    cold = runner.sweep(benches)
    warm = runner.sweep(benches)
    print()
    print(warm.render_table())
    assert warm.cache_hit_ratio("outcome") >= 0.9
    assert all(cell["cycles"] == cold.cells[i]["cycles"]
               for i, cell in enumerate(warm.cells))
    assert warm.wall_seconds * 3.0 <= cold.wall_seconds, (
        f"warm sweep {warm.wall_seconds:.2f}s not >=3x faster than "
        f"cold {cold.wall_seconds:.2f}s"
    )
