"""Table 1 — the three object/computation partitioning methods.

Regenerates the scheme-definition table from the live scheme registry so
the printed table always matches what the code actually runs.
"""

from harness import outcome

from repro.evalmodel import format_table
from repro.pipeline.schemes import SCHEME_TABLE


def test_table1_scheme_definitions(benchmark):
    def build():
        rows = []
        for key in ("gdp", "profilemax", "naive", "unified"):
            meta = SCHEME_TABLE[key]
            rows.append(
                [
                    meta["label"],
                    meta["object_partitioner"],
                    meta["object_assignment"],
                    meta["computation_partitioner"],
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print("Table 1: object and computation partitioning methods")
    print(
        format_table(
            [
                "Algorithm",
                "Object Partitioner",
                "Object Assignment",
                "Computation Partitioner",
            ],
            rows,
        )
    )
    assert len(rows) == 4
    assert all(row[3] == "RHOP" for row in rows)


def test_table1_schemes_runnable():
    """Every Table-1 scheme actually runs end to end on a benchmark."""
    for scheme in SCHEME_TABLE:
        result = outcome("rawcaudio", scheme, 5)
        assert result.cycles > 0
