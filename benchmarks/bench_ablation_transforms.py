"""Ablation — the frontend transform pipeline (region ILP recovery).

DESIGN.md documents why the reproduction needs if-conversion + unrolling
(+ scalar optimization): the paper's Trimaran regions are hyperblocks
with real ILP.  This bench quantifies each stage's effect on region size
and on the unified baseline, and checks the scheme ordering survives
without the optimizer.
"""

from functools import lru_cache

from repro.bench import get
from repro.evalmodel import arithmetic_mean, format_table
from repro.lang import compile_source
from repro.machine import two_cluster_machine
from repro.opt import optimize_module
from repro.pipeline import Pipeline, PreparedProgram

SAMPLE = ("rawcaudio", "fir", "mpeg2enc", "fsed")
LAT = 5

CONFIGS = {
    "plain": dict(unroll=0, ifc=False, opt=False),
    "+ifconvert": dict(unroll=0, ifc=True, opt=False),
    "+unroll": dict(unroll=4, ifc=True, opt=False),
    "+optimize": dict(unroll=4, ifc=True, opt=True),
}


@lru_cache(maxsize=None)
def build(name: str, config_key: str):
    cfg = CONFIGS[config_key]
    module = compile_source(
        get(name).source, name, unroll_factor=cfg["unroll"],
        if_convert=cfg["ifc"],
    )
    if cfg["opt"]:
        optimize_module(module)
    return PreparedProgram(module)


@lru_cache(maxsize=None)
def outcomes(name: str, config_key: str):
    pipe = Pipeline(two_cluster_machine(move_latency=LAT))
    return pipe.run_all(build(name, config_key))


def region_stats():
    rows = []
    for name in SAMPLE:
        row = [name]
        for key in CONFIGS:
            prep = build(name, key)
            biggest = max(len(b) for f in prep.module for b in f)
            row.append(biggest)
        rows.append(row)
    return rows


def test_ablation_region_sizes(benchmark):
    rows = benchmark.pedantic(region_stats, rounds=1, iterations=1)
    print()
    print("Ablation: largest region (ops) per transform stage")
    print(format_table(["benchmark"] + list(CONFIGS), rows))
    for row in rows:
        plain, final = row[1], row[4]
        assert final > plain, f"{row[0]}: transforms should grow regions"


def test_ablation_transform_effect_on_schemes():
    print()
    rows = []
    for key in ("plain", "+optimize"):
        gs, ns = [], []
        for name in SAMPLE:
            out = outcomes(name, key)
            base = out["unified"].cycles
            gs.append(base / out["gdp"].cycles)
            ns.append(base / out["naive"].cycles)
        rows.append([key, round(arithmetic_mean(gs), 3),
                     round(arithmetic_mean(ns), 3)])
    print("Ablation: scheme quality vs transform pipeline (rel to unified)")
    print(format_table(["config", "GDP", "naive"], rows))
    # With the full pipeline GDP must remain in a healthy band.
    assert rows[-1][1] > 0.75


def test_unified_baseline_improves_with_transforms():
    """The transforms exist to strengthen the baseline: unified cycles
    must drop monotonically-ish from plain to fully transformed."""
    improved = 0
    for name in SAMPLE:
        plain = outcomes(name, "plain")["unified"].cycles
        final = outcomes(name, "+optimize")["unified"].cycles
        if final < plain:
            improved += 1
    assert improved >= len(SAMPLE) - 1
