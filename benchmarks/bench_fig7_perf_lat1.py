"""Figure 7 — GDP and Profile Max vs unified memory at 1-cycle latency.

Paper: "for most benchmarks, both the GDP and Profile Max methods are
able to perform well, and match the performance of a unified memory
model.  This occurs because with such a low latency penalty for
intercluster network traffic, the need to make intelligent object
placement decisions becomes less important."
"""

from harness import FULL_SUITE, performance_figure, relative_performance

from repro.evalmodel import arithmetic_mean


def test_fig7_performance_lat1(benchmark):
    text = benchmark.pedantic(
        performance_figure, args=(1,), rounds=1, iterations=1
    )
    print()
    print("Figure 7:", text, sep="\n")

    gdp_avg = arithmetic_mean(
        [relative_performance(n, "gdp", 1) for n in FULL_SUITE]
    )
    pmax_avg = arithmetic_mean(
        [relative_performance(n, "profilemax", 1) for n in FULL_SUITE]
    )
    # At 1-cycle latency both methods approach unified parity.
    assert gdp_avg > 0.90
    assert pmax_avg > 0.88


def test_fig7_most_benchmarks_near_parity():
    near = [
        n for n in FULL_SUITE if relative_performance(n, "gdp", 1) > 0.9
    ]
    assert len(near) >= len(FULL_SUITE) * 0.6
