"""Ablation — intercluster bus bandwidth.

The paper fixes the network at 1 move/cycle ("The intercluster network
bandwidth allows for 1 move per cycle").  This sweep varies the bandwidth
to show how much of the partitioned-memory gap is bandwidth- vs
latency-bound at the default 5-cycle latency.
"""

from functools import lru_cache

from harness import prepared

from repro.evalmodel import arithmetic_mean, format_table
from repro.machine import InterclusterNetwork, Machine, paper_cluster
from repro.pipeline.schemes import run_scheme

SAMPLE = ("rawcaudio", "fsed", "mpeg2enc", "viterbi")
BANDWIDTHS = (1, 2, 4)
LAT = 5


def machine_with_bandwidth(bw: int) -> Machine:
    return Machine(
        [paper_cluster("c0"), paper_cluster("c1")],
        InterclusterNetwork(LAT, bandwidth=bw),
    )


@lru_cache(maxsize=None)
def outcome_bw(name: str, scheme: str, bw: int):
    return run_scheme(prepared(name), machine_with_bandwidth(bw), scheme)


def compute():
    rows = []
    for name in SAMPLE:
        for bw in BANDWIDTHS:
            base = outcome_bw(name, "unified", bw).cycles
            gdp = outcome_bw(name, "gdp", bw).cycles
            rows.append([name, bw, round(base / gdp, 3)])
    return rows


def test_ablation_bus_bandwidth(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print(f"Ablation: bus bandwidth sweep at {LAT}-cycle latency "
          "(GDP relative to unified)")
    print(format_table(["benchmark", "moves/cycle", "GDP rel"], rows))
    by_bw = {
        bw: arithmetic_mean([r[2] for r in rows if r[1] == bw])
        for bw in BANDWIDTHS
    }
    print(f"\naverages: {by_bw}")
    assert all(v > 0.5 for v in by_bw.values())


def test_wider_bus_never_hurts_gdp_absolute():
    """More bandwidth can only help (or leave unchanged) GDP's absolute
    cycle count on each benchmark."""
    for name in SAMPLE:
        narrow = outcome_bw(name, "gdp", 1).cycles
        wide = outcome_bw(name, "gdp", 4).cycles
        assert wide <= narrow * 1.02, name
