"""Ablation — access-pattern merges vs slack-based merging (§3.3.1).

The paper evaluated and rejected merging low-slack dependent operations
into the data-partitioning groups: "merging based on computation
dependencies can negatively affect the resulting object partitioning.
This occurred because fewer groupings of objects allowed for more freedom
and flexibility in the partitioning process."
"""

from functools import lru_cache

from harness import outcome, prepared

from repro.evalmodel import arithmetic_mean, format_table
from repro.machine import two_cluster_machine
from repro.partition import slack_merge
from repro.partition.gdp import gdp_partition
from repro.pipeline.schemes import run_gdp
from repro.schedule import DependenceGraph

SAMPLE = ("rawcaudio", "rawdaudio", "fsed", "g721enc", "gsmenc", "fir")
LAT = 5


@lru_cache(maxsize=None)
def slack_merged_outcome(name: str):
    prep = prepared(name)
    machine = two_cluster_machine(move_latency=LAT)
    depgraphs = [
        DependenceGraph(block, machine.latency_of)
        for func in prep.module
        for block in func
        if block.ops
    ]
    merge = slack_merge(prep.program_graph, prep.objects, depgraphs)
    dp = gdp_partition(
        prep.module,
        prep.objects,
        machine.num_clusters,
        block_freq=prep.block_freq,
        merge=merge,
        program_graph=prep.program_graph,
    )
    return run_gdp(prep, machine, object_home=dp.object_home)


def compute():
    rows = []
    for name in SAMPLE:
        base = outcome(name, "unified", LAT).cycles
        access = base / outcome(name, "gdp", LAT).cycles
        slack = base / slack_merged_outcome(name).cycles
        rows.append([name, round(access, 3), round(slack, 3)])
    return rows


def test_ablation_merge_strategy(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print("Ablation: GDP coarsening strategy (relative perf vs unified)")
    print(format_table(["benchmark", "access-pattern", "slack-merge"], rows))
    access_avg = arithmetic_mean([r[1] for r in rows])
    slack_avg = arithmetic_mean([r[2] for r in rows])
    print(f"\naverages: access-pattern {access_avg:.3f}, slack {slack_avg:.3f}")
    # The paper's choice should not lose to the rejected variant.
    assert access_avg >= slack_avg - 0.05


def test_slack_merge_produces_fewer_groups():
    """Slack merging glues dependent ops into groups, so it can only
    reduce (or keep) the number of free placement units."""
    prep = prepared("rawcaudio")
    machine = two_cluster_machine(move_latency=LAT)
    depgraphs = [
        DependenceGraph(block, machine.latency_of)
        for func in prep.module
        for block in func
        if block.ops
    ]
    merged = slack_merge(prep.program_graph, prep.objects, depgraphs)
    assert merged.group_count() <= prep.merge.group_count()
