"""Ablation — the METIS imbalance knob (§4.3).

Paper: "the object mappings at better performance, but worse memory
balance, can be achieved by allowing for more imbalance of the resulting
partition in METIS."  This sweep relaxes GDP's size-balance tolerance and
reports performance and the resulting byte split.
"""

from functools import lru_cache

from harness import outcome, prepared

from repro.evalmodel import format_table
from repro.machine import two_cluster_machine
from repro.partition.gdp import GDPConfig, gdp_partition
from repro.pipeline.schemes import run_gdp

SAMPLE = ("rawcaudio", "rawdaudio", "sobel", "fsed")
RATIOS = (1.05, 1.2, 1.5, 2.0, 4.0)
LAT = 5


@lru_cache(maxsize=None)
def swept(name: str, ratio: float):
    prep = prepared(name)
    machine = two_cluster_machine(move_latency=LAT)
    config = GDPConfig(size_imbalance=ratio)
    dp = gdp_partition(
        prep.module,
        prep.objects,
        machine.num_clusters,
        block_freq=prep.block_freq,
        config=config,
        program_graph=prep.program_graph,
        merge=prep.merge,
    )
    out = run_gdp(prep, machine, object_home=dp.object_home)
    bytes_split = dp.cluster_bytes(prep.objects)
    return out, bytes_split


def compute():
    rows = []
    for name in SAMPLE:
        base = outcome(name, "unified", LAT).cycles
        for ratio in RATIOS:
            out, split = swept(name, ratio)
            total = sum(split) or 1
            rows.append(
                [
                    name,
                    ratio,
                    round(base / out.cycles, 3),
                    f"{split[0]}/{split[1]}",
                    round(max(split) / total, 2),
                ]
            )
    return rows


def test_ablation_imbalance_sweep(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    print("Ablation: GDP size-imbalance tolerance sweep")
    print(
        format_table(
            ["benchmark", "ub", "rel perf", "bytes c0/c1", "max share"], rows
        )
    )
    # Relaxing balance never breaks the pipeline and keeps results sane.
    assert all(r[2] > 0.3 for r in rows)


def test_imbalance_monotone_freedom():
    """With a looser tolerance the partitioner can only do as well or
    better on cut-driven placement for at least one benchmark."""
    improved = 0
    for name in SAMPLE:
        tight, _ = swept(name, RATIOS[0])
        loose, _ = swept(name, RATIOS[-1])
        if loose.cycles <= tight.cycles * 1.02:
            improved += 1
    assert improved >= len(SAMPLE) // 2
