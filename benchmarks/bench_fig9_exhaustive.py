"""Figure 9 — exhaustive search of all object mappings (rawcaudio,
rawdaudio).

Paper: "each point represents the performance of a possible data object
partitioning normalized to the worst performing partitioning. ... Both
the GDP and Profile Max methods achieved object partitionings which were
well-balanced.  However, the partitioning chosen by the GDP method had a
better performance."
"""

from functools import lru_cache

from harness import FIG9_SUITE, outcome, prepared

from repro.evalmodel import exhaustive_search, scatter_plot
from repro.machine import two_cluster_machine

LAT = 5


@lru_cache(maxsize=None)
def search(name: str):
    machine = two_cluster_machine(move_latency=LAT)
    gdp = outcome(name, "gdp", LAT)
    pmax = outcome(name, "profilemax", LAT)
    return exhaustive_search(
        prepared(name),
        machine,
        scheme_homes={"gdp": gdp.object_home, "pmax": pmax.object_home},
    )


def _print_figure(name: str, result) -> None:
    xs = [p.imbalance for p in result.points]
    ys = [result.normalized(p) for p in result.points]
    shades = [p.imbalance for p in result.points]
    marks = {
        label: (point.imbalance, result.normalized(point))
        for label, point in result.scheme_points.items()
    }
    print()
    print(
        f"Figure 9 ({name}): {len(result.points)} object mappings, "
        f"best/worst = {result.best_improvement():.3f}"
    )
    print(
        scatter_plot(
            xs,
            ys,
            shades=shades,
            marks=marks,
            x_label="object size imbalance (0=balanced, 1=one-sided)",
            y_label="performance vs worst mapping",
        )
    )
    for label, point in result.scheme_points.items():
        print(
            f"  {label}: perf {result.normalized(point):.3f} of worst, "
            f"imbalance {point.imbalance:.3f}"
        )


def test_fig9a_rawcaudio(benchmark):
    result = benchmark.pedantic(search, args=("rawcaudio",), rounds=1, iterations=1)
    _print_figure("rawcaudio", result)
    gdp_point = result.scheme_points["gdp"]
    # GDP picks a mapping well above the worst and reasonably balanced.
    assert result.normalized(gdp_point) > 1.0
    assert gdp_point.imbalance < 0.8


def test_fig9b_rawdaudio(benchmark):
    result = benchmark.pedantic(search, args=("rawdaudio",), rounds=1, iterations=1)
    _print_figure("rawdaudio", result)
    assert result.best_improvement() > 1.02
    gdp_point = result.scheme_points["gdp"]
    assert result.normalized(gdp_point) >= 1.0


def test_fig9_spread_exists():
    """The search space must show a real performance spread (the paper saw
    ~10% for rawcaudio and ~25% for rawdaudio)."""
    for name in FIG9_SUITE:
        result = search(name)
        assert result.best_improvement() > 1.01, name
