"""Service throughput — request coalescing + artifact cache vs serial.

Drives a 200-submission burst (8 distinct program x scheme cells, 25x
duplication, 16 client threads) through the full HTTP stack and compares
the service's wall clock against the serial cost of computing every
submission independently.  The measured property is the tentpole claim:
duplicate traffic collapses onto O(distinct) executions — every
duplicate RunConfig coalesces onto an in-flight job or is answered by
the content-addressed outcome cache, never recomputed.
"""

import threading
import time

from repro.evalmodel import format_table
from repro.exec import RunConfig
from repro.exec.engine import run_cell
from repro.service import Broker, ServiceClient, ServiceServer

FIR = """
int N = 16;
int x[16];
int y[16];
int c[4];
int main() {
  int i; int j; int acc;
  for (i = 0; i < 4; i = i + 1) { c[i] = i + 1; }
  for (i = 0; i < N; i = i + 1) { x[i] = i * 3 % 17; }
  for (i = 0; i < N - 4; i = i + 1) {
    acc = 0;
    for (j = 0; j < 4; j = j + 1) { acc = acc + x[i + j] * c[j]; }
    y[i] = acc;
  }
  print_int(y[5]);
  return 0;
}
"""

HIST = """
int N = 24;
int data[24];
int hist[8];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { data[i] = (i * 7 + 3) % 8; }
  for (i = 0; i < N; i = i + 1) { hist[data[i]] = hist[data[i]] + 1; }
  print_int(hist[3]);
  return 0;
}
"""

SCHEMES = ("unified", "gdp", "profilemax", "naive")
CELLS = [
    (name, source, scheme)
    for name, source in (("fir", FIR), ("hist", HIST))
    for scheme in SCHEMES
]
SUBMISSIONS = 200
THREADS = 16


def _submit_burst(client):
    replies = []
    lock = threading.Lock()

    def pump(indices):
        for i in indices:
            name, source, scheme = CELLS[i % len(CELLS)]
            reply = client.submit(
                source=source, name=name, config={"scheme": scheme},
                tenant=f"t{i % 5}",
            )
            with lock:
                replies.append(reply)

    pool = [
        threading.Thread(
            target=pump, args=(range(t, SUBMISSIONS, THREADS),)
        )
        for t in range(THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return replies


def test_service_throughput_vs_serial(benchmark, tmp_path):
    # Serial baseline: what the same 200 submissions cost with no
    # service in front — every one computed independently, no cache.
    serial_started = time.perf_counter()
    serial_results = {}
    for name, source, scheme in CELLS:
        cell = run_cell({
            "bench": name, "source": source,
            "config": RunConfig(scheme=scheme, cache="off").to_dict(),
        })
        assert cell["status"] == "ok"
        serial_results[(name, scheme)] = cell
    serial_cell_seconds = time.perf_counter() - serial_started
    serial_equiv = serial_cell_seconds / len(CELLS) * SUBMISSIONS

    server = ServiceServer(
        broker=Broker(
            config=RunConfig(cache_dir=str(tmp_path / "cache"), jobs=1),
            workers=4,
        ),
        port=0,
    ).start()
    client = ServiceClient(server.url, timeout=600.0)
    try:
        def burst():
            replies = _submit_burst(client)
            finals = {
                jid: client.wait(jid, timeout=600.0)
                for jid in sorted({r["id"] for r in replies})
            }
            return replies, finals

        started = time.perf_counter()
        replies, finals = benchmark.pedantic(burst, rounds=1, iterations=1)
        service_seconds = time.perf_counter() - started
        stats = client.stats()
    finally:
        server.stop()

    coalesced = sum(f["coalesced"] for f in finals.values())
    warm = sum(
        1 for f in finals.values()
        if (f.get("cache") or {}).get("outcome") == "hit"
    )
    # Zero lost or duplicated submissions, every job completed.
    assert len(replies) == SUBMISSIONS
    assert len(finals) + coalesced == SUBMISSIONS
    assert all(f["state"] == "done" for f in finals.values())
    # At least one coalesce per duplicated RunConfig.
    assert coalesced >= 1
    assert coalesced + warm >= SUBMISSIONS - len(CELLS)
    # Byte-identical to serial execution.
    for final in finals.values():
        key = (final["bench"], final["config"]["scheme"])
        assert final["result"]["cycles"] == serial_results[key]["cycles"]
        assert (
            final["result"]["dynamic_moves"]
            == serial_results[key]["dynamic_moves"]
        )

    print()
    print(format_table(
        ["metric", "value"],
        [
            ["submissions", str(SUBMISSIONS)],
            ["distinct cells", str(len(CELLS))],
            ["jobs executed", str(stats["jobs"]["completed"])],
            ["coalesced (in-flight dedupe)", str(coalesced)],
            ["warm outcome hits (cache dedupe)", str(warm)],
            ["coalesce ratio", f"{stats['coalesce_ratio']:.2f}"],
            ["service wall seconds", f"{service_seconds:.2f}"],
            ["serial-equivalent seconds", f"{serial_equiv:.2f}"],
            ["speedup vs serial",
             f"{serial_equiv / max(service_seconds, 1e-9):.1f}x"],
            ["submissions/second",
             f"{SUBMISSIONS / max(service_seconds, 1e-9):.1f}"],
        ],
    ))
    assert serial_equiv > service_seconds  # dedupe beats recompute
