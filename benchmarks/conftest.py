"""Pytest configuration for the figure/table benches."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest  # noqa: E402

#: Full-suite figures legitimately run for minutes; lift the tier-1
#: per-test cap (pyproject ``timeout``) for everything in this directory.
BENCH_TIMEOUT_SECONDS = 1800


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(BENCH_TIMEOUT_SECONDS))


def pytest_sessionfinish(session, exitstatus):
    # The harness caches prepared programs and outcomes for the whole
    # session; release them so back-to-back in-process runs start cold.
    import harness

    harness.clear_caches()
