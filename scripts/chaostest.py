#!/usr/bin/env python
"""Chaos harness for the durable partitioning service (stdlib only).

Three phases, each with explicit pass/fail checks:

1. **Baseline** — an uninterrupted ``repro serve`` run over a mixed
   program x scheme matrix (including a slice of ``raise:worker@1``
   jobs, so worker crashes + requeues are part of the "normal" run).
   The per-cell result projections are the golden answers.
2. **Crash** — a fresh server with ``--journal``, the same submission
   mix fired from concurrent threads, and a killer thread that
   ``SIGKILL``s the *server process* once enough submissions are acked.
   The server is restarted on the same journal + cache directories; the
   harness then asserts **zero lost jobs** (every job id acked before
   the kill recovers and reaches ``done``/``degraded``) and that the
   final per-cell results are **byte-identical** to the baseline.
3. **Corruption** — random bytes are flipped inside stored artifact
   entries; re-running the cells must detect the damage (digest
   verification), quarantine the corrupt files, recompute bit-identical
   results, and ``repro cache stats --format json`` must report a
   nonzero quarantine count — with exit code 0 throughout.

Usage::

    PYTHONPATH=src python scripts/chaostest.py                # full (>=100 jobs)
    PYTHONPATH=src python scripts/chaostest.py --short        # CI smoke
    PYTHONPATH=src python scripts/chaostest.py --submissions 200 --threads 12

Exit code 0 means every check in every phase held.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

SCRIPTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPTS_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)

PROGRAMS = {
    "chfir": """
int N = 16;
int x[16];
int y[16];
int c[4];
int main() {
  int i; int j; int acc;
  for (i = 0; i < 4; i = i + 1) { c[i] = i + 1; }
  for (i = 0; i < N; i = i + 1) { x[i] = i * 3 % 17; }
  for (i = 0; i < N - 4; i = i + 1) {
    acc = 0;
    for (j = 0; j < 4; j = j + 1) { acc = acc + x[i + j] * c[j]; }
    y[i] = acc;
  }
  print_int(y[5]);
  return 0;
}
""",
    "chhist": """
int N = 24;
int data[24];
int hist[8];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { data[i] = (i * 7 + 3) % 8; }
  for (i = 0; i < N; i = i + 1) { hist[data[i]] = hist[data[i]] + 1; }
  print_int(hist[3]);
  return 0;
}
""",
}

SCHEMES = ("unified", "gdp", "profilemax", "naive")

#: Every WORKER_CRASH_EVERY-th distinct cell also runs as a variant whose
#: first attempt loses its worker (``raise:worker@1``): the requeue path
#: is chaos-tested in both the baseline and the crash run.
WORKER_CRASH_EVERY = 4
WORKER_CRASH_SPEC = "seed=3;raise:worker@1"


def build_requests(
    submissions: int, tenants: int
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """(requests, cells): the submission mix and its distinct cells."""
    cells: List[Dict[str, Any]] = []
    index = 0
    for name, source in sorted(PROGRAMS.items()):
        for scheme in SCHEMES:
            cells.append({
                "name": name, "source": source,
                "config": {"scheme": scheme},
            })
            if index % WORKER_CRASH_EVERY == 0:
                cells.append({
                    "name": name, "source": source,
                    "config": {"scheme": scheme,
                               "fault_spec": WORKER_CRASH_SPEC},
                })
            index += 1
    requests = [
        dict(cells[i % len(cells)], tenant=f"tenant{i % tenants}")
        for i in range(submissions)
    ]
    return requests, cells


def cell_key(request: Dict[str, Any]) -> str:
    """Stable identity of one cell (for baseline-vs-recovered compare)."""
    return json.dumps(
        {"name": request["name"], "config": request["config"]},
        sort_keys=True,
    )


# -- server process management -------------------------------------------------


def start_server(
    cache_dir: str,
    journal_dir: Optional[str],
    workers: int,
) -> Tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, url)."""
    cmd = [
        sys.executable, "-m", "repro", "serve", "--port", "0",
        "--workers", str(workers), "--cache-dir", cache_dir,
    ]
    if journal_dir is not None:
        cmd += ["--journal", journal_dir, "--fsync", "always"]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    banner = proc.stdout.readline().strip()
    if not banner.startswith("serving on "):
        proc.kill()
        raise RuntimeError(f"unexpected server banner: {banner!r}")
    return proc, banner.split()[2]


def stop_server(proc: subprocess.Popen, url: str) -> None:
    from repro.service import ServiceClient

    try:
        ServiceClient(url, timeout=10.0).shutdown(drain=True)
    except Exception:  # noqa: BLE001 - already dead is fine here
        pass
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


# -- phase 1: baseline ---------------------------------------------------------


def collect_results(client, requests, timeout: float) -> Dict[str, Any]:
    """Submit every request, wait for all jobs, and fold the terminal
    result projections into {cell_key: result}."""
    job_for_cell: Dict[str, str] = {}
    for request in requests:
        reply = client.submit(
            source=request["source"], name=request["name"],
            config=request["config"], tenant=request.get("tenant", "default"),
        )
        job_for_cell.setdefault(cell_key(request), reply["id"])
    results: Dict[str, Any] = {}
    for key, job_id in sorted(job_for_cell.items()):
        final = client.wait(job_id, timeout=timeout)
        if final["state"] not in ("done", "degraded"):
            raise RuntimeError(
                f"cell {key} ended {final['state']}: {final.get('error')}"
            )
        results[key] = final["result"]
    return results


def run_baseline(args, workdir: str) -> Dict[str, Any]:
    from repro.service import ServiceClient

    cache_dir = os.path.join(workdir, "baseline-cache")
    proc, url = start_server(cache_dir, None, args.workers)
    try:
        client = ServiceClient(url, timeout=args.timeout)
        requests, cells = build_requests(args.submissions, args.tenants)
        results = collect_results(client, requests, args.timeout)
    finally:
        stop_server(proc, url)
    assert len(results) == len(cells)
    return results


# -- phase 2: crash + recovery -------------------------------------------------


def run_crash(args, workdir: str, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from repro.service import ServiceClient

    cache_dir = os.path.join(workdir, "crash-cache")
    journal_dir = os.path.join(workdir, "crash-journal")
    requests, _cells = build_requests(args.submissions, args.tenants)

    proc, url = start_server(cache_dir, journal_dir, args.workers)
    acked: List[Tuple[int, str]] = []   # (request index, job id)
    refused: List[str] = []
    lock = threading.Lock()
    killed = threading.Event()

    def killer() -> None:
        while not killed.is_set():
            with lock:
                enough = len(acked) >= args.kill_after
            if enough:
                os.kill(proc.pid, signal.SIGKILL)
                killed.set()
                return
            time.sleep(0.002)

    def pump(thread_index: int) -> None:
        client = ServiceClient(url, timeout=10.0, retry_budget=5.0)
        for i in range(thread_index, len(requests), args.threads):
            request = requests[i]
            try:
                reply = client.submit(
                    source=request["source"], name=request["name"],
                    config=request["config"], tenant=request["tenant"],
                )
            except Exception as exc:  # noqa: BLE001 - the kill, mostly
                with lock:
                    refused.append(f"{type(exc).__name__}")
                if killed.is_set():
                    return
                continue
            with lock:
                acked.append((i, reply["id"]))

    killer_thread = threading.Thread(target=killer, daemon=True)
    pumps = [
        threading.Thread(target=pump, args=(t,), daemon=True)
        for t in range(args.threads)
    ]
    killer_thread.start()
    for thread in pumps:
        thread.start()
    for thread in pumps:
        thread.join(timeout=args.timeout)
    killer_thread.join(timeout=args.timeout)
    proc.wait(timeout=60)
    server_killed = proc.returncode == -signal.SIGKILL

    # Restart on the same journal + cache directories: recovery.
    proc2, url2 = start_server(cache_dir, journal_dir, args.workers)
    try:
        client = ServiceClient(url2, timeout=args.timeout)
        stats = client.stats()
        recovery = stats["recovery"]

        # Zero lost: every job id acked before the kill still exists and
        # reaches a completed terminal state on the recovered server.
        acked_ids = sorted({job_id for _i, job_id in acked})
        lost: List[str] = []
        for job_id in acked_ids:
            try:
                final = client.wait(job_id, timeout=args.timeout)
            except Exception:  # noqa: BLE001 - unknown id == lost
                lost.append(job_id)
                continue
            if final["state"] not in ("done", "degraded"):
                lost.append(job_id)

        # Byte-identity: resubmit the full mix (idempotent — coalescing
        # + the artifact cache absorb whatever already ran) and compare
        # the per-cell projections against the crash-free baseline.
        results = collect_results(client, requests, args.timeout)
        recovered_blob = json.dumps(results, sort_keys=True)
        baseline_blob = json.dumps(baseline, sort_keys=True)
    finally:
        stop_server(proc2, url2)

    checks = {
        "server_was_sigkilled": server_killed,
        "kill_interrupted_submissions": len(acked_ids) < args.submissions,
        "journal_recovered_jobs": recovery["recovered"] >= 1,
        "zero_lost_jobs": not lost,
        "results_byte_identical": recovered_blob == baseline_blob,
    }
    return {
        "acked_before_kill": len(acked_ids),
        "refused_after_kill": len(refused),
        "recovery": recovery,
        "journal": stats["journal"],
        "lost": lost[:10],
        "checks": checks,
    }


# -- phase 3: cache corruption + self-heal -------------------------------------


def run_corruption(args, workdir: str, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from repro.exec.engine import run_cell

    cache_dir = os.path.join(workdir, "baseline-cache")
    rng = random.Random(args.seed)

    # Flip one byte somewhere inside each victim entry.
    objects = os.path.join(cache_dir, "objects")
    stored = []
    for dirpath, _dirnames, filenames in os.walk(objects):
        stored.extend(
            os.path.join(dirpath, n) for n in filenames
            if n.endswith(".json")
        )
    stored.sort()
    victims = rng.sample(stored, min(args.corruptions, len(stored)))
    for path in victims:
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[rng.randrange(len(data))] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))

    # Re-run every cell against the damaged store: digests must catch
    # the flips, quarantine the files, and recompute identical results.
    requests, _cells = build_requests(args.submissions, args.tenants)
    healed: Dict[str, Any] = {}
    for request in requests:
        key = cell_key(request)
        if key in healed:
            continue
        cell = run_cell({
            "bench": request["name"], "source": request["source"],
            "config": dict(request["config"],
                           cache="on", cache_dir=cache_dir),
        })
        healed[key] = {
            "bench": cell["bench"], "scheme": cell["scheme"],
            "latency": cell["latency"],
            "pointsto_tier": cell["pointsto_tier"], "seed": cell["seed"],
            "machine": cell["machine"], "status": cell["status"],
            "ran_as": cell["ran_as"], "cycles": cell["cycles"],
            "dynamic_moves": cell["dynamic_moves"], "error": cell["error"],
        }

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    stats_proc = subprocess.run(
        [sys.executable, "-m", "repro", "cache", "stats",
         "--cache-dir", cache_dir, "--format", "json"],
        capture_output=True, text=True, env=env,
    )
    try:
        cache_stats = json.loads(stats_proc.stdout)
        quarantined = cache_stats["quarantine"]["entries"]
    except (ValueError, KeyError):
        quarantined = -1

    checks = {
        "bytes_were_flipped": len(victims) >= 1,
        "corruption_quarantined": quarantined >= 1,
        "cache_stats_exit_0": stats_proc.returncode == 0,
        "healed_results_byte_identical":
            json.dumps(healed, sort_keys=True)
            == json.dumps(baseline, sort_keys=True),
    }
    return {
        "flipped": len(victims),
        "quarantine_entries": quarantined,
        "checks": checks,
    }


# -- driver --------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--submissions", type=int, default=120)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-after", type=int, default=None,
                        help="SIGKILL the server once this many "
                        "submissions are acked (default submissions//3)")
    parser.add_argument("--corruptions", type=int, default=2,
                        help="cache entries to flip a byte in (phase 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--short", action="store_true",
                        help="CI smoke: fewer submissions, 1 kill, "
                        "1 corruption")
    args = parser.parse_args(argv)
    if args.short:
        args.submissions = min(args.submissions, 36)
        args.threads = min(args.threads, 4)
        args.corruptions = 1
    if args.kill_after is None:
        args.kill_after = max(1, args.submissions // 3)

    workdir = tempfile.mkdtemp(prefix="repro-chaostest-")
    summary: Dict[str, Any] = {
        "workdir": workdir,
        "submissions": args.submissions,
        "threads": args.threads,
        "kill_after": args.kill_after,
    }

    baseline = run_baseline(args, workdir)
    summary["cells"] = len(baseline)
    summary["crash"] = run_crash(args, workdir, baseline)
    summary["corruption"] = run_corruption(args, workdir, baseline)

    checks = dict(summary["crash"]["checks"])
    checks.update(summary["corruption"]["checks"])
    summary["ok"] = all(checks.values())
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
