#!/usr/bin/env bash
# Static-analysis smoke test:
#   1. ruff + mypy over the tree (strict on src/repro/lint/, lenient
#      elsewhere — see pyproject.toml); both are skipped with a notice
#      when the tool is not installed.
#   2. `repro lint` over every example program and every bundled
#      benchmark: all must report ZERO errors (warnings are allowed).
#
# Usage: scripts/check.sh   (from the repository root)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

failures=0

note() { printf '== %s\n' "$*"; }

# -- 1. optional tool gates ---------------------------------------------------

if command -v ruff >/dev/null 2>&1; then
    note "ruff check"
    ruff check src tests benchmarks examples || failures=$((failures + 1))
else
    note "ruff not installed - skipping (config lives in pyproject.toml)"
fi

if command -v mypy >/dev/null 2>&1; then
    note "mypy (strict on repro.lint)"
    mypy || failures=$((failures + 1))
else
    note "mypy not installed - skipping (config lives in pyproject.toml)"
fi

# -- 2. lint every example program -------------------------------------------

note "repro lint over examples/ SOURCE programs"
for example in examples/*.py; do
    if grep -q '^SOURCE = """' "$example"; then
        if python -m repro lint "$example"; then
            note "ok: $example"
        else
            note "FAIL: $example"
            failures=$((failures + 1))
        fi
    fi
done

# -- 3. lint every bundled benchmark (zero errors required) -------------------

note "repro lint over the bundled benchmark suite"
python - <<'PY' || failures=$((failures + 1))
import sys

from repro.bench import all_benchmarks
from repro.lang import compile_source
from repro.lint import lint_module

bad = 0
for bench in all_benchmarks():
    report = lint_module(compile_source(bench.source, bench.name))
    status = "FAIL" if report.has_errors else "ok"
    print(f"{status}: bench {bench.name}: {report.summary()}")
    if report.has_errors:
        print(report.render_text())
        bad += 1
sys.exit(1 if bad else 0)
PY

if [ "$failures" -ne 0 ]; then
    note "$failures check group(s) failed"
    exit 1
fi
note "all checks passed"
