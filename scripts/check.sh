#!/usr/bin/env bash
# Static-analysis smoke test, split into individually invocable stages:
#
#   tools       ruff + mypy over the tree (strict on src/repro/lint/,
#               lenient elsewhere — see pyproject.toml); each is skipped
#               with a notice when the tool is not installed.
#   examples    `repro lint` over every example program: zero errors.
#   benches     `repro lint` over every bundled benchmark: zero errors.
#   faults      fault-injection smoke (one spec per fault class) through
#               the resilient pipeline's degradation ladder.
#   ptdiff      points-to refinement differ over the whole suite.
#   staticdiff  static-vs-dynamic drift differ over the whole suite:
#               every static access bound must contain the observed
#               dynamic counts/regions (zero violations).
#   regioncheck region-granular MOD/REF checks over the whole suite:
#               the cross-tier region refinement chain holds on every
#               bench (zero errors), every scheme outcome passes the
#               region-located partition invariants with a sound
#               roofline ratio (>= 1.0), and >= 3 benches carry
#               region-splittable advisories.
#   cache       artifact cache smoke (cold vs warm Table-1 sweep).
#   service     job-server smoke: `repro serve` on an ephemeral port,
#               healthz, a small concurrent loadtest burst (zero lost
#               jobs, duplicates deduped), then graceful shutdown.
#   chaos       durability smoke: SIGKILL a journaled server mid-burst,
#               restart + recover (zero lost jobs, byte-identical
#               results), flip bytes in cache artifacts (quarantine +
#               self-heal), and a bounded-queue backpressure loadtest
#               (429 + Retry-After absorbed by client backoff).
#
# Usage: scripts/check.sh [stage ...]   (from the repository root)
#        no arguments runs every stage in order.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
export PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

STAGES="tools examples benches faults ptdiff staticdiff regioncheck cache service chaos"
failures=0

note() { printf '== %s\n' "$*"; }

# -- tools: optional ruff / mypy gates ----------------------------------------

stage_tools() {
    if command -v ruff >/dev/null 2>&1; then
        note "ruff check"
        ruff check src tests benchmarks examples || failures=$((failures + 1))
    else
        note "ruff not installed - skipping (config lives in pyproject.toml)"
    fi

    if command -v mypy >/dev/null 2>&1; then
        note "mypy (strict on repro.lint)"
        mypy || failures=$((failures + 1))
    else
        note "mypy not installed - skipping (config lives in pyproject.toml)"
    fi
}

# -- examples: lint every example program -------------------------------------

stage_examples() {
    note "repro lint over examples/ SOURCE programs"
    for example in examples/*.py; do
        if grep -q '^SOURCE = """' "$example"; then
            if python -m repro lint "$example"; then
                note "ok: $example"
            else
                note "FAIL: $example"
                failures=$((failures + 1))
            fi
        fi
    done
}

# -- benches: lint every bundled benchmark (zero errors required) -------------

stage_benches() {
    note "repro lint over the bundled benchmark suite"
    python - <<'PY' || failures=$((failures + 1))
import sys

from repro.bench import all_benchmarks
from repro.lang import compile_source
from repro.lint import lint_module

bad = 0
for bench in all_benchmarks():
    report = lint_module(compile_source(bench.source, bench.name))
    status = "FAIL" if report.has_errors else "ok"
    print(f"{status}: bench {bench.name}: {report.summary()}")
    if report.has_errors:
        print(report.render_text())
        bad += 1
sys.exit(1 if bad else 0)
PY
}

# -- faults: fault-injection smoke (one spec per fault class) -----------------
# Persistent faults must be survived via the degradation ladder with the
# fallback recorded in the run report.  Exit codes are the uniform CLI
# contract: 0 = clean, 1 = degraded-but-survived (fell back), 2 = hard
# failure (never acceptable here).

stage_faults() {
    note "fault-injection smoke (resilient pipeline, one spec per fault class)"
    python - <<'PY' || failures=$((failures + 1))
import json
import sys
import tempfile

from repro.cli import main

# (spec, expect_fallback): persistent raise / corrupt-homes faults must be
# survived by falling down the ladder; unlock and slow-moves must at least
# fire and finish (unlock is repaired or caught depending on the victim).
SPECS = [
    ("seed=7;raise:gdp", True),
    ("seed=7;corrupt-homes:gdp:2", True),
    ("seed=7;unlock:gdp:4", None),
    ("seed=7;slow-moves:4", None),
    # A dead profiler degrades to the static profile rung, not to naive:
    # the run must end on a profile-guided scheme with the fallback logged.
    ("seed=7;raise:profiler", True),
]

bad = 0
for spec, expect_fallback in SPECS:
    with tempfile.NamedTemporaryFile("r", suffix=".json") as tmp:
        code = main([
            "partition", "examples/quickstart.py",
            "--fallback", "--retries", "1",
            "--fault-spec", spec, "--run-report", tmp.name,
        ])
        report = json.load(open(tmp.name))
    faults = report["summary"]["faults"]
    fallbacks = report["summary"]["fallbacks"]
    expected_code = 1 if fallbacks >= 1 else 0
    ok = (
        code == expected_code
        and faults >= 1
        and report["final"]["status"] == "ok"
        and (expect_fallback is None or (fallbacks >= 1) == expect_fallback)
    )
    print(f"{'ok' if ok else 'FAIL'}: --fault-spec '{spec}' "
          f"(exit {code}, {faults} fault(s), {fallbacks} fallback(s), "
          f"final {report['final']['scheme']})")
    bad += 0 if ok else 1
sys.exit(1 if bad else 0)
PY
}

# -- ptdiff: points-to refinement differ over the whole suite -----------------
# Every sharper tier must be a refinement of the tier below on every
# benchmark (pts_cs ⊆ pts_field ⊆ pts_andersen per memory op), and every
# tier must contain the objects the interpreter actually touches.

stage_ptdiff() {
    note "points-to refinement differ (all benches x all tiers + dynamic oracle)"
    python - <<'PY' || failures=$((failures + 1))
import sys

from repro.bench import all_benchmarks
from repro.lang import compile_source
from repro.lint import diff_tiers
from repro.profiler import Interpreter

bad = 0
for bench in all_benchmarks():
    module = compile_source(bench.source, bench.name)
    interp = Interpreter(module)
    interp.run()
    report = diff_tiers(module, profile=interp.profile)
    avg = " ".join(
        f"{t}={report.stats[t]['avg_set_size']}" for t in report.stats
    )
    status = "FAIL" if report.has_errors else "ok"
    print(f"{status}: differ {bench.name}: {report.summary()} ({avg})")
    if report.has_errors:
        print(report.render_text())
        bad += 1
sys.exit(1 if bad else 0)
PY
}

# -- staticdiff: static-vs-dynamic drift differ over the whole suite ----------
# The abstract-interpretation access bounds must *contain* what the
# interpreter actually observes on every benchmark: every executed block
# within its static bound, every op's access weight within its bound,
# every touched byte region inside its static region.  Zero violations.

stage_staticdiff() {
    note "static-vs-dynamic drift differ (all benches, zero violations)"
    python - <<'PY' || failures=$((failures + 1))
import sys

from repro.bench import all_benchmarks
from repro.lang import compile_source
from repro.lint import diff_static_dynamic
from repro.profiler import Interpreter

bad = 0
for bench in all_benchmarks():
    module = compile_source(bench.source, bench.name)
    interp = Interpreter(module)
    interp.run()
    report = diff_static_dynamic(module, interp.profile)
    s = report.stats["staticdiff"]
    status = "FAIL" if report.has_errors else "ok"
    print(f"{status}: staticdiff {bench.name}: "
          f"{s['violations']} violation(s), "
          f"{s['ops_finite_bound']}/{s['ops_compared']} ops finite, "
          f"{s['blocks_bounded']}/{s['blocks_measured']} blocks bounded, "
          f"median weight ratio {s['median_weight_ratio']}")
    if report.has_errors:
        print(report.render_text())
        bad += 1
sys.exit(1 if bad else 0)
PY
}

# -- regioncheck: region-granular MOD/REF checks over the whole suite ---------
# The cross-tier region refinement chain must hold on every bench, every
# scheme outcome must satisfy the region-located partition invariants
# (zero ERROR findings) with a sound roofline ratio, and the suite must
# carry at least three region-splittable advisories — the acceptance
# gates of benchmarks/bench_region_interference.py at CI scale.

stage_regioncheck() {
    note "region-granular checks (refinement chain, outcome invariants, roofline)"
    python - <<'PY' || failures=$((failures + 1))
import sys

from repro.bench import all_benchmarks
from repro.lint import check_region_outcome, lint_module
from repro.machine import two_cluster_machine
from repro.pipeline import (
    PreparedProgram,
    run_gdp,
    run_naive,
    run_profile_max,
    run_unified,
)

SCHEMES = (
    ("gdp", run_gdp), ("profilemax", run_profile_max),
    ("naive", run_naive), ("unified", run_unified),
)
machine = two_cluster_machine(move_latency=5)
bad = 0
splittable_benches = []
for bench in all_benchmarks():
    prepared = PreparedProgram.from_source(bench.source, bench.name)
    lint = lint_module(prepared.module, only=["regioncheck"])
    advisories = sum(
        1 for d in lint.diagnostics if d.rule == "region-splittable"
    )
    if advisories:
        splittable_benches.append(bench.name)
    errors = len(lint.errors)
    worst = 1.0
    for name, run in SCHEMES:
        outcome = run(prepared, machine)
        report = check_region_outcome(prepared, outcome)
        errors += len(report.errors)
        for diag in report.errors:
            print(f"  {name}: {diag.render()}")
        ratio = (outcome.roofline or {}).get("ratio", 0.0)
        worst = max(worst, ratio)
        if outcome.roofline is None or ratio < 1.0:
            print(f"  {name}: unsound roofline {outcome.roofline}")
            errors += 1
    status = "FAIL" if errors else "ok"
    print(f"{status}: regioncheck {bench.name}: {errors} error(s), "
          f"{advisories} splittable advisory(ies), "
          f"worst roofline x{worst:.2f}")
    bad += 1 if errors else 0
if len(splittable_benches) < 3:
    print(f"FAIL: only {splittable_benches} carry region-splittable "
          f"advisories (need >= 3 benches)")
    bad += 1
else:
    print(f"ok: splittable advisories on {splittable_benches}")
sys.exit(1 if bad else 0)
PY
}

# -- cache: artifact cache smoke (cold vs warm Table-1 sweep) -----------------
# The Table-1 sweep (all benches x all schemes, --jobs 2) runs twice
# against a throwaway cache root: the second pass must serve >= 90% of
# its cells from the outcome cache and reproduce every cell's result
# exactly (cycles / moves / ran-as; the run *reports* legitimately
# differ — a warm cell records no partitioner attempts).  Finishes with
# a `repro cache stats` / `cache gc` smoke over the same store.

stage_cache() {
    note "artifact cache smoke (Table-1 sweep twice, --jobs 2, >=90% warm hits)"
    CACHE_TMP="$(mktemp -d)"
    trap 'rm -rf "$CACHE_TMP"' EXIT
    REPRO_CHECK_CACHE_DIR="$CACHE_TMP" python - <<'PY' || failures=$((failures + 1))
import os
import sys

from repro.bench import names as bench_names
from repro.exec import ParallelRunner, RunConfig

config = RunConfig(jobs=2, cache="on",
                   cache_dir=os.environ["REPRO_CHECK_CACHE_DIR"])
runner = ParallelRunner(config)
cold = runner.sweep(bench_names())
warm = runner.sweep(bench_names())
ratio = warm.cache_hit_ratio("outcome")
RESULT_FIELDS = ("bench", "scheme", "latency", "pointsto_tier", "seed",
                 "status", "ran_as", "cycles", "dynamic_moves")
same = all(
    all(c[f] == w[f] for f in RESULT_FIELDS)
    for c, w in zip(cold.cells, warm.cells)
)
statuses = warm.counts()
print(f"cold {cold.wall_seconds:.2f}s, warm {warm.wall_seconds:.2f}s, "
      f"warm outcome hit ratio {ratio:.2f}, cells {statuses}")
bad = 0
if ratio < 0.9:
    print(f"FAIL: warm hit ratio {ratio:.2f} < 0.90")
    bad += 1
if not same:
    print("FAIL: warm sweep results differ from cold")
    bad += 1
if statuses["failed"] or statuses["degraded"]:
    print(f"FAIL: unexpected non-ok cells: {statuses}")
    bad += 1
print(("ok" if not bad else "FAIL") + ": cold/warm Table-1 sweep")
sys.exit(1 if bad else 0)
PY

    note "repro cache stats / gc smoke"
    {
        python -m repro cache stats --cache-dir "$CACHE_TMP" \
            && python -m repro cache gc --cache-dir "$CACHE_TMP" --max-age-days 30 \
            && python -m repro cache gc --cache-dir "$CACHE_TMP" --max-bytes 0 \
            && python -m repro cache stats --cache-dir "$CACHE_TMP" --format json \
                | python -c 'import json,sys; s=json.load(sys.stdin); sys.exit(0 if s["entries"] == 0 else 1)' \
            && note "ok: cache stats/gc"
    } || { note "FAIL: cache stats/gc"; failures=$((failures + 1)); }
}

# -- service: job-server smoke (serve, loadtest burst, graceful shutdown) -----
# `repro serve --port 0` in a subprocess, parse the announced URL, probe
# /v1/healthz, drive a small concurrent loadtest burst against it (every
# submission accounted for, duplicates coalesced or warm-served), then
# POST /v1/shutdown and require a clean exit 0 from the server process.

stage_service() {
    note "service smoke (repro serve + concurrent loadtest + graceful shutdown)"
    python - <<'PY' || failures=$((failures + 1))
import json
import subprocess
import sys
import tempfile
import urllib.request

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2",
     "--cache-dir", tempfile.mkdtemp(prefix="repro-check-service-")],
    stdout=subprocess.PIPE, text=True,
)
banner = proc.stdout.readline().strip()  # "serving on http://HOST:PORT (...)"
url = banner.split()[2]
print(f"ok: {banner}")
bad = 0
try:
    with urllib.request.urlopen(f"{url}/v1/healthz", timeout=10) as resp:
        health = json.load(resp)
    ok = health.get("status") == "ok" and health.get("workers_alive") == 2
    print(f"{'ok' if ok else 'FAIL'}: healthz {health}")
    bad += 0 if ok else 1

    load = subprocess.run(
        [sys.executable, "scripts/loadtest.py", "--url", url,
         "--submissions", "48", "--threads", "8"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        checks = json.loads(load.stdout)["checks"]
    except (json.JSONDecodeError, KeyError):
        checks = {"summary_unparseable": False}
    ok = load.returncode == 0 and all(checks.values())
    print(f"{'ok' if ok else 'FAIL'}: loadtest exit {load.returncode}, "
          f"checks {checks}")
    bad += 0 if ok else 1

    request = urllib.request.Request(
        f"{url}/v1/shutdown", data=b"{}", method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        print(f"ok: shutdown accepted {json.load(resp)}")
    code = proc.wait(timeout=60)
    print(f"{'ok' if code == 0 else 'FAIL'}: server exited {code}")
    bad += 0 if code == 0 else 1
finally:
    if proc.poll() is None:
        proc.kill()
sys.exit(1 if bad else 0)
PY
}

stage_chaos() {
    note "chaos smoke (SIGKILL + recovery, cache corruption self-heal)"
    python scripts/chaostest.py --short || failures=$((failures + 1))

    note "backpressure smoke (bounded queue, 429 + client backoff)"
    python - <<'PY' || failures=$((failures + 1))
import json
import subprocess
import sys

load = subprocess.run(
    [sys.executable, "scripts/loadtest.py", "--submissions", "48",
     "--threads", "8", "--workers", "1", "--max-depth", "1"],
    stdout=subprocess.PIPE, text=True,
)
try:
    summary = json.loads(load.stdout)
    checks = summary["checks"]
    retries = summary["client_429_retries"]
except (json.JSONDecodeError, KeyError):
    checks, retries = {"summary_unparseable": False}, 0
ok = load.returncode == 0 and all(checks.values())
print(f"{'ok' if ok else 'FAIL'}: loadtest exit {load.returncode}, "
      f"429 retries {retries}, checks {checks}")
sys.exit(0 if ok else 1)
PY
}

# -- dispatch -----------------------------------------------------------------

if [ "$#" -eq 0 ]; then
    run="$STAGES"
else
    run="$*"
    for stage in $run; do
        case " $STAGES " in
            *" $stage "*) ;;
            *)
                note "unknown stage '$stage' (stages: $STAGES)"
                exit 2
                ;;
        esac
    done
fi

for stage in $run; do
    "stage_$stage"
done

if [ "$failures" -ne 0 ]; then
    note "$failures check group(s) failed"
    exit 1
fi
note "all checks passed"
