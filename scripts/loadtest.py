#!/usr/bin/env python
"""Load test for the partitioning service (stdlib only).

Fires ``--submissions`` requests (a mixed program x scheme matrix with
heavy duplication) at a service from ``--threads`` concurrent client
threads, waits for every job to reach a terminal state, and then checks
the books:

* **zero lost / duplicated jobs** — every submission is accounted for
  exactly once: ``submissions == sum(1 + coalesced)`` over the created
  jobs, and the distinct cells map to exactly that many executions;
* **dedupe actually worked** — duplicates were absorbed by request
  coalescing (in-flight) or the artifact cache (completed), so at least
  ``submissions - distinct`` of them never computed anything;
* **every job completed** — ``done`` (or ``degraded``, which still
  yields a result) — the server survived the whole burst;
* **no submitter thread died** — an unexpected exception in a pump
  thread fails the run with a nonzero exit instead of being silently
  swallowed by ``join()``;
* with ``--max-depth N``: **backpressure was exercised** — the bounded
  queue served real 429s and the client's jittered backoff absorbed all
  of them, with the zero-lost invariant still holding.

By default the harness starts a throwaway in-process server on an
ephemeral port with a temporary cache dir; pass ``--url`` to aim at an
already-running ``repro serve`` instead.  The summary is printed as JSON
(machine readable, like ``repro cache stats --format json``); exit code
0 means every assertion held.

Usage::

    PYTHONPATH=src python scripts/loadtest.py
    PYTHONPATH=src python scripts/loadtest.py --submissions 500 --threads 32
    PYTHONPATH=src python scripts/loadtest.py --url http://127.0.0.1:8642
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List

PROGRAMS = {
    "ltfir": """
int N = 16;
int x[16];
int y[16];
int c[4];
int main() {
  int i; int j; int acc;
  for (i = 0; i < 4; i = i + 1) { c[i] = i + 1; }
  for (i = 0; i < N; i = i + 1) { x[i] = i * 3 % 17; }
  for (i = 0; i < N - 4; i = i + 1) {
    acc = 0;
    for (j = 0; j < 4; j = j + 1) { acc = acc + x[i + j] * c[j]; }
    y[i] = acc;
  }
  print_int(y[5]);
  return 0;
}
""",
    "lthist": """
int N = 24;
int data[24];
int hist[8];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { data[i] = (i * 7 + 3) % 8; }
  for (i = 0; i < N; i = i + 1) { hist[data[i]] = hist[data[i]] + 1; }
  print_int(hist[3]);
  return 0;
}
""",
}

SCHEMES = ("unified", "gdp", "profilemax", "naive")


def build_requests(submissions: int, tenants: int) -> List[Dict[str, Any]]:
    cells = [
        (name, source, scheme)
        for name, source in sorted(PROGRAMS.items())
        for scheme in SCHEMES
    ]
    return [
        {
            "name": cells[i % len(cells)][0],
            "source": cells[i % len(cells)][1],
            "config": {"scheme": cells[i % len(cells)][2]},
            "tenant": f"tenant{i % tenants}",
        }
        for i in range(submissions)
    ], len(cells)


def run_load(client, requests, threads: int):
    replies: List[Dict[str, Any]] = []
    errors: List[str] = []
    fatal: List[str] = []
    lock = threading.Lock()

    def pump(chunk):
        # The outer try is the thread's own supervision: a bug that
        # escapes the per-request handling below must fail the harness
        # loudly (a crashed submitter thread silently swallowed by
        # join() used to *understate* the load and pass anyway).
        try:
            for request in chunk:
                try:
                    reply = client.submit(**request)
                except Exception as exc:  # noqa: BLE001 - counted, not fatal
                    with lock:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                with lock:
                    replies.append(reply)
        except BaseException as exc:  # noqa: BLE001 - thread supervision
            with lock:
                fatal.append(f"{type(exc).__name__}: {exc}")
            raise

    pool = [
        threading.Thread(target=pump, args=(requests[i::threads],))
        for i in range(threads)
    ]
    started = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    submit_seconds = time.perf_counter() - started
    return replies, errors, fatal, submit_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="target a running server (default: start a "
                        "throwaway in-process one)")
    parser.add_argument("--submissions", type=int, default=200)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--tenants", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker threads for the in-process server")
    parser.add_argument("--max-depth", type=int, default=None,
                        help="bound the in-process server's queue depth: "
                        "excess submissions get 429 + Retry-After and the "
                        "client retries with backoff (the backpressure "
                        "proof; requires the in-process server)")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    from repro.exec import RunConfig
    from repro.service import Broker, ServiceClient, ServiceServer

    server = None
    if args.url is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-loadtest-")
        server = ServiceServer(
            broker=Broker(
                config=RunConfig(cache_dir=cache_dir, jobs=1),
                workers=args.workers,
                max_depth=args.max_depth,
            ),
            port=0,
        ).start()
        url = server.url
    elif args.max_depth is not None:
        parser.error("--max-depth configures the in-process server; "
                     "it cannot apply to an external --url")
    client = ServiceClient(
        url if server is None else server.url,
        timeout=args.timeout, retry_budget=args.timeout,
    )
    url = client.base_url

    try:
        requests, distinct = build_requests(args.submissions, args.tenants)
        replies, errors, fatal, submit_seconds = run_load(
            client, requests, args.threads
        )

        job_ids = sorted({reply["id"] for reply in replies})
        wait_started = time.perf_counter()
        finals = {jid: client.wait(jid, timeout=args.timeout)
                  for jid in job_ids}
        drain_seconds = time.perf_counter() - wait_started

        coalesced = sum(final["coalesced"] for final in finals.values())
        accounted = len(finals) + coalesced
        states: Dict[str, int] = {}
        for final in finals.values():
            states[final["state"]] = states.get(final["state"], 0) + 1
        warm_hits = sum(
            1 for final in finals.values()
            if (final.get("cache") or {}).get("outcome") == "hit"
        )
        stats = client.stats()

        lost = len(replies) - accounted
        deduped = coalesced + warm_hits
        checks = {
            "all_submissions_accepted":
                len(replies) == args.submissions and not errors,
            "zero_lost_or_duplicated": lost == 0,
            "all_jobs_completed":
                states.get("done", 0) + states.get("degraded", 0)
                == len(finals),
            "duplicates_deduped":
                deduped >= args.submissions - distinct,
            "no_thread_deaths": not fatal,
        }
        if args.max_depth is not None:
            # The cap must actually have pushed back (429s served) and
            # the client's backoff must have absorbed every one of them
            # (already implied by all_submissions_accepted + zero_lost).
            checks["backpressure_exercised"] = (
                stats["admission"]["rejected_depth"] > 0
                and client.retries > 0
            )
        summary = {
            "url": url,
            "submissions": args.submissions,
            "threads": args.threads,
            "distinct_cells": distinct,
            "accepted": len(replies),
            "errors": errors[:5],
            "thread_deaths": fatal[:5],
            "client_429_retries": client.retries,
            "jobs_created": len(finals),
            "coalesced": coalesced,
            "coalesce_ratio": stats["coalesce_ratio"],
            "warm_outcome_hits": warm_hits,
            "states": dict(sorted(states.items())),
            "submit_seconds": round(submit_seconds, 3),
            "drain_seconds": round(drain_seconds, 3),
            "submissions_per_second": round(
                args.submissions / max(submit_seconds, 1e-9), 1
            ),
            "server_stats": {
                "jobs": stats["jobs"],
                "queue": stats["queue"],
                "admission": stats["admission"],
                "cache_session": stats["cache"]["session"],
                "cache_hit_ratio": stats["cache"]["hit_ratio"],
            },
            "checks": checks,
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if all(checks.values()) else 1
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":
    sys.exit(main())
