"""Root pytest configuration: per-test wall-clock timeouts.

Tier-1 tests are capped per test via the ``timeout`` ini option (see
``pyproject.toml``) so a hung refinement loop fails one test instead of
wedging the whole session.  When the real ``pytest-timeout`` plugin is
installed it owns the option; otherwise the minimal SIGALRM fallback
below enforces the same cap (main thread, POSIX only — platforms without
SIGALRM simply run uncapped, as before this file existed).
"""

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    HAVE_TIMEOUT_PLUGIN = False

_FALLBACK_ACTIVE = not HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    if not HAVE_TIMEOUT_PLUGIN:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback for the "
            "pytest-timeout plugin; 0 disables)",
            default="0",
        )


def pytest_configure(config):
    if not HAVE_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock cap "
            "(pytest-timeout, or the conftest SIGALRM fallback)",
        )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = _timeout_for(item) if _FALLBACK_ACTIVE else 0.0
    if seconds <= 0:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {seconds:.0f}s per-test timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
